// Differential suite for the batch-structured mask kernel: MatchMaskBatch
// must be bit-identical to the per-atom MatchMaskWords oracle — under every
// compiled ISA variant, across the packed/word view-count boundaries
// (31/32/33/63/64/65), for odd and lane-straddling batch sizes, through
// both consumers (LabelingPipeline::LabelBatch and
// engine::ConcurrentLabeler::LabelBatch), and with zero heap allocations on
// the warm kernel path. Also pins the dispatch contract the scalar-forced
// CI leg relies on: a scalar-forced environment can never select a vector
// ISA.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "cq/pattern.h"
#include "cq/schema.h"
#include "engine/labeler.h"
#include "engine/snapshot.h"
#include "label/compiled_matcher.h"
#include "label/pipeline.h"
#include "label/view_catalog.h"

// ---------------------------------------------------------------------------
// Allocation counting (house harness): every operator new in this binary
// bumps the counter when armed. Proves the warm batch path allocates
// nothing.
// ---------------------------------------------------------------------------
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fdc::label {
namespace {

using cq::Atom;
using cq::AtomPattern;
using cq::ConjunctiveQuery;
using cq::Term;

constexpr int kMaxArity = 5;
const char* const kConstPool[6] = {"a", "b", "c", "d", "e", "f"};

// Pins ActiveIsa for a scope; always restores env/auto dispatch on exit.
struct ScopedIsa {
  explicit ScopedIsa(simd::Isa isa) { simd::ForceIsa(isa); }
  ~ScopedIsa() { simd::ClearForcedIsa(); }
};

// Every ISA variant this binary can execute: scalar always, plus the
// detected vector ISA when the hardware has one.
std::vector<simd::Isa> TestableIsas() {
  std::vector<simd::Isa> isas{simd::Isa::kScalar};
  if (simd::DetectIsa() != simd::Isa::kScalar) isas.push_back(simd::DetectIsa());
  return isas;
}

cq::Schema RandomSchema(Rng* rng, int num_relations,
                        std::vector<int>* arities) {
  cq::Schema schema;
  for (int r = 0; r < num_relations; ++r) {
    const int arity = static_cast<int>(rng->Range(2, kMaxArity));
    std::vector<std::string> cols;
    for (int c = 0; c < arity; ++c) cols.push_back("c" + std::to_string(c));
    (void)schema.AddRelation("R" + std::to_string(r), cols);
    arities->push_back(arity);
  }
  return schema;
}

AtomPattern RandomPattern(Rng* rng, int relation, int arity) {
  std::vector<Term> terms;
  const int num_vars = 1 + static_cast<int>(rng->Below(arity));
  for (int p = 0; p < arity; ++p) {
    if (rng->Chance(0.3)) {
      terms.push_back(Term::Const(kConstPool[rng->Below(6)]));
    } else {
      terms.push_back(Term::Var(static_cast<int>(rng->Below(num_vars))));
    }
  }
  std::vector<bool> distinguished(num_vars, false);
  for (int v = 0; v < num_vars; ++v) distinguished[v] = rng->Chance(0.5);
  return AtomPattern::FromAtom(Atom(relation, std::move(terms)),
                               distinguished);
}

void BoundaryCatalog(Rng* rng, ViewCatalog* catalog,
                     const std::vector<int>& arities, int views_per_relation) {
  for (size_t relation = 0; relation < arities.size(); ++relation) {
    for (int k = 0; k < views_per_relation; ++k) {
      const AtomPattern pattern =
          RandomPattern(rng, static_cast<int>(relation), arities[relation]);
      (void)catalog->AddView(
          "v" + std::to_string(relation) + "_" + std::to_string(k),
          pattern.ToQuery("V"));
    }
  }
}

ConjunctiveQuery RandomQuery(Rng* rng, const std::vector<int>& arities) {
  const int natoms = 1 + static_cast<int>(rng->Below(3));
  std::vector<Atom> atoms;
  std::vector<bool> used(4, false);
  for (int a = 0; a < natoms; ++a) {
    const int relation = static_cast<int>(rng->Below(arities.size()));
    std::vector<Term> terms;
    for (int p = 0; p < arities[relation]; ++p) {
      if (rng->Chance(0.25)) {
        terms.push_back(Term::Const(kConstPool[rng->Below(6)]));
      } else {
        const int v = static_cast<int>(rng->Below(4));
        used[v] = true;
        terms.push_back(Term::Var(v));
      }
    }
    atoms.emplace_back(relation, std::move(terms));
  }
  std::vector<Term> head;
  for (int v = 0; v < 4; ++v) {
    if (used[v] && rng->Chance(0.4)) head.push_back(Term::Var(v));
  }
  return ConjunctiveQuery("Q", std::move(head), std::move(atoms));
}

// Per-atom oracle rows for one relation's batch, laid out exactly like the
// batch kernel's output (stride = MaskWords(relation)).
std::vector<uint64_t> OracleRows(const CompiledCatalogMatcher& matcher,
                                 const std::vector<AtomPattern>& batch) {
  const int W = matcher.MaskWords(batch.front().relation);
  std::vector<uint64_t> rows(batch.size() * static_cast<size_t>(W), ~0ULL);
  for (size_t i = 0; i < batch.size(); ++i) {
    matcher.MatchMaskWords(batch[i], rows.data() + i * static_cast<size_t>(W));
  }
  return rows;
}

// The packed-capacity and word-width view-count boundaries, plus a deep
// two-word catalog; the batch sizes straddle the SIMD lane counts (odd
// sizes, lane-count ± 1, and the run-vectorization threshold).
const int kBoundaryViewCounts[] = {1, 5, 31, 32, 33, 63, 64, 65, 128};
const int kBatchSizes[] = {1, 3, 5, 7, 8, 64};

TEST(BatchKernelPropertyTest, MatchesPerAtomOracleAcrossBoundariesAndIsas) {
  Rng rng(0xba7c'0001);
  const std::vector<simd::Isa> isas = TestableIsas();
  for (const int views : kBoundaryViewCounts) {
    std::vector<int> arities;
    const int num_relations = 1 + static_cast<int>(rng.Below(2));
    cq::Schema schema = RandomSchema(&rng, num_relations, &arities);
    ViewCatalog catalog(&schema);
    BoundaryCatalog(&rng, &catalog, arities, views);
    const CompiledCatalogMatcher matcher =
        CompiledCatalogMatcher::Compile(catalog);
    BatchScratch scratch;  // one scratch across every relation/size/ISA
    for (const int batch_size : kBatchSizes) {
      for (int relation = 0; relation < num_relations; ++relation) {
        std::vector<AtomPattern> batch;
        for (int i = 0; i < batch_size; ++i) {
          batch.push_back(RandomPattern(&rng, relation, arities[relation]));
        }
        const std::vector<uint64_t> expected = OracleRows(matcher, batch);
        std::vector<uint64_t> got(expected.size(), 0);
        std::vector<const AtomPattern*> ptrs;
        for (const AtomPattern& p : batch) ptrs.push_back(&p);
        for (const simd::Isa isa : isas) {
          ScopedIsa forced(isa);
          std::fill(got.begin(), got.end(), ~0ULL);
          matcher.MatchMaskBatch(std::span<const AtomPattern>(batch),
                                 got.data(), &scratch);
          EXPECT_EQ(got, expected)
              << "views=" << views << " batch=" << batch_size
              << " relation=" << relation << " isa=" << simd::IsaName(isa);
          // Pointer-batch overload: same kernel, scattered storage.
          std::fill(got.begin(), got.end(), ~0ULL);
          matcher.MatchMaskBatch(std::span<const AtomPattern* const>(ptrs),
                                 got.data(), &scratch);
          EXPECT_EQ(got, expected)
              << "pointer overload views=" << views << " batch=" << batch_size
              << " isa=" << simd::IsaName(isa);
        }
      }
    }
  }
}

TEST(BatchKernelPropertyTest, ZeroesArityMismatchRowsInsideABatch) {
  Rng rng(0xba7c'0002);
  std::vector<int> arities;
  cq::Schema schema = RandomSchema(&rng, 1, &arities);
  ViewCatalog catalog(&schema);
  BoundaryCatalog(&rng, &catalog, arities, 65);
  const CompiledCatalogMatcher matcher =
      CompiledCatalogMatcher::Compile(catalog);
  BatchScratch scratch;
  // Mismatched-arity patterns (impossible from Dissect, but the kernel
  // contract covers them) interleaved with valid ones.
  std::vector<AtomPattern> batch;
  for (int i = 0; i < 9; ++i) {
    const int arity = (i % 3 == 1) ? arities[0] + 1 : arities[0];
    batch.push_back(RandomPattern(&rng, 0, arity));
  }
  const std::vector<uint64_t> expected = OracleRows(matcher, batch);
  std::vector<uint64_t> got(expected.size(), ~0ULL);
  for (const simd::Isa isa : TestableIsas()) {
    ScopedIsa forced(isa);
    std::fill(got.begin(), got.end(), ~0ULL);
    matcher.MatchMaskBatch(std::span<const AtomPattern>(batch), got.data(),
                           &scratch);
    EXPECT_EQ(got, expected) << "isa=" << simd::IsaName(isa);
  }
  const int W = matcher.MaskWords(0);
  for (int i = 1; i < 9; i += 3) {  // the mismatched rows are all-zero
    for (int w = 0; w < W; ++w) {
      EXPECT_EQ(got[static_cast<size_t>(i) * W + w], 0u) << "row " << i;
    }
  }
}

TEST(BatchKernelPropertyTest, FallbackRelationsRunThePerViewLoopPerPattern) {
  // Arity beyond kMaxCompiledArity: the net is not compiled and the batch
  // entry must degrade to the per-view fallback, pattern by pattern.
  Rng rng(0xba7c'0003);
  cq::Schema schema;
  const int arity = CompiledCatalogMatcher::kMaxCompiledArity + 1;
  std::vector<std::string> cols;
  for (int c = 0; c < arity; ++c) cols.push_back("c" + std::to_string(c));
  (void)schema.AddRelation("Wide", cols);
  ViewCatalog catalog(&schema);
  for (int k = 0; k < 6; ++k) {
    (void)catalog.AddView("v" + std::to_string(k),
                          RandomPattern(&rng, 0, arity).ToQuery("V"));
  }
  const CompiledCatalogMatcher matcher =
      CompiledCatalogMatcher::Compile(catalog);
  ASSERT_EQ(matcher.AvoidedPerViewTests(0), 0);  // fallback relation
  BatchScratch scratch;
  std::vector<AtomPattern> batch;
  for (int i = 0; i < 7; ++i) batch.push_back(RandomPattern(&rng, 0, arity));
  const std::vector<uint64_t> expected = OracleRows(matcher, batch);
  std::vector<uint64_t> got(expected.size(), ~0ULL);
  matcher.MatchMaskBatch(std::span<const AtomPattern>(batch), got.data(),
                         &scratch);
  EXPECT_EQ(got, expected);
}

TEST(BatchKernelPropertyTest, PipelineBatchMatchesPerQueryAndAblatedPaths) {
  Rng rng(0xba7c'0004);
  for (const int views : {5, 33, 65}) {
    std::vector<int> arities;
    cq::Schema schema = RandomSchema(&rng, 2, &arities);
    ViewCatalog catalog(&schema);
    BoundaryCatalog(&rng, &catalog, arities, views);

    LabelingPipeline batched(&catalog);
    LabelingPipeline per_query(&catalog);
    LabelingOptions ablated_options;
    ablated_options.ablate_batch_kernel = true;
    LabelingPipeline ablated(&catalog, nullptr, nullptr, {}, ablated_options);

    // Duplicates included: the batch memo/dedup bookkeeping is on the path.
    std::vector<ConjunctiveQuery> pool;
    for (int i = 0; i < 24; ++i) pool.push_back(RandomQuery(&rng, arities));
    for (int i = 0; i < 8; ++i) pool.push_back(pool[static_cast<size_t>(i)]);

    const std::vector<DisclosureLabel> got = batched.LabelBatch(pool);
    const std::vector<DisclosureLabel> want = ablated.LabelBatch(pool);
    ASSERT_EQ(got.size(), pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "views=" << views << " query " << i;
      EXPECT_EQ(got[i], per_query.Label(pool[i])) << "query " << i;
    }
    EXPECT_GT(batched.stats().batch_mask_evals, 0u);
    EXPECT_EQ(batched.stats().batch_mask_evals,
              batched.stats().compiled_mask_evals);
    EXPECT_EQ(ablated.stats().batch_mask_evals, 0u);
    // Second identical batch: all memo hits, no new kernel work.
    const uint64_t evals = batched.stats().batch_mask_evals;
    const std::vector<DisclosureLabel> again = batched.LabelBatch(pool);
    for (size_t i = 0; i < pool.size(); ++i) EXPECT_EQ(again[i], got[i]);
    EXPECT_EQ(batched.stats().batch_mask_evals, evals);
  }
}

TEST(BatchKernelPropertyTest, PipelineBatchAgreesUnderInternerSaturation) {
  Rng rng(0xba7c'0005);
  std::vector<int> arities;
  cq::Schema schema = RandomSchema(&rng, 2, &arities);
  ViewCatalog catalog(&schema);
  BoundaryCatalog(&rng, &catalog, arities, 40);
  LabelingOptions options;
  options.max_interned_queries = 3;  // most of the batch goes stateless
  LabelingPipeline batched(&catalog, nullptr, nullptr, {}, options);
  LabelingPipeline reference(&catalog);
  std::vector<ConjunctiveQuery> pool;
  for (int i = 0; i < 20; ++i) pool.push_back(RandomQuery(&rng, arities));
  const std::vector<DisclosureLabel> got = batched.LabelBatch(pool);
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(got[i], reference.Label(pool[i])) << "query " << i;
  }
}

TEST(BatchKernelPropertyTest, ConcurrentLabelerBatchMatchesPipeline) {
  Rng rng(0xba7c'0006);
  for (const int views : {5, 65}) {
    std::vector<int> arities;
    cq::Schema schema = RandomSchema(&rng, 2, &arities);
    ViewCatalog catalog(&schema);
    BoundaryCatalog(&rng, &catalog, arities, views);

    std::vector<ConjunctiveQuery> warmup;
    for (int i = 0; i < 8; ++i) warmup.push_back(RandomQuery(&rng, arities));
    auto frozen = engine::FrozenCatalog::Build(&catalog, warmup);
    engine::ConcurrentLabeler labeler(frozen);
    engine::ConcurrentLabelerOptions ablated_options;
    ablated_options.ablate_batch_kernel = true;
    engine::ConcurrentLabeler ablated(frozen, ablated_options);
    LabelingPipeline reference(&catalog);

    // Mix: warmup structures (frozen hits), novel ones, and batch-internal
    // duplicates — all three resolution tiers in one batch.
    std::vector<ConjunctiveQuery> pool = warmup;
    for (int i = 0; i < 24; ++i) pool.push_back(RandomQuery(&rng, arities));
    for (int i = 0; i < 6; ++i) {
      pool.push_back(pool[warmup.size() + static_cast<size_t>(i)]);
    }

    const std::vector<DisclosureLabel> got = labeler.LabelBatch(pool);
    const std::vector<DisclosureLabel> want = ablated.LabelBatch(pool);
    ASSERT_EQ(got.size(), pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "views=" << views << " query " << i;
      EXPECT_EQ(got[i], reference.Label(pool[i])) << "query " << i;
    }
    EXPECT_GT(labeler.stats().frozen_hits, 0u);
    EXPECT_GT(labeler.stats().batch_mask_evals, 0u);
    EXPECT_EQ(ablated.stats().batch_mask_evals, 0u);
    // Re-labeling the same batch resolves from the overlay memo.
    const uint64_t evals = labeler.stats().batch_mask_evals;
    const std::vector<DisclosureLabel> again = labeler.LabelBatch(pool);
    for (size_t i = 0; i < pool.size(); ++i) EXPECT_EQ(again[i], got[i]);
    EXPECT_EQ(labeler.stats().batch_mask_evals, evals);
  }
}

TEST(BatchKernelPropertyTest, WarmBatchKernelIsAllocationFree) {
  Rng rng(0xba7c'0007);
  std::vector<int> arities;
  cq::Schema schema = RandomSchema(&rng, 2, &arities);
  ViewCatalog catalog(&schema);
  BoundaryCatalog(&rng, &catalog, arities, 128);
  const CompiledCatalogMatcher matcher =
      CompiledCatalogMatcher::Compile(catalog);
  ASSERT_EQ(matcher.max_mask_words(), 2);

  // Two relation buckets, evaluated alternately — the shape LabelBatch's
  // bucket loop produces with its hoisted buffer and persistent scratch.
  std::vector<std::vector<AtomPattern>> buckets(2);
  for (int relation = 0; relation < 2; ++relation) {
    for (int i = 0; i < 24; ++i) {
      buckets[static_cast<size_t>(relation)].push_back(
          RandomPattern(&rng, relation, arities[static_cast<size_t>(relation)]));
    }
  }
  BatchScratch scratch;
  std::vector<uint64_t> masks(
      24 * static_cast<size_t>(matcher.max_mask_words()), 0);
  std::vector<std::vector<uint64_t>> expected;
  for (const std::vector<AtomPattern>& bucket : buckets) {
    matcher.MatchMaskBatch(std::span<const AtomPattern>(bucket), masks.data(),
                           &scratch);
    expected.push_back(masks);
  }

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int rep = 0; rep < 20; ++rep) {
    for (size_t b = 0; b < buckets.size(); ++b) {
      matcher.MatchMaskBatch(std::span<const AtomPattern>(buckets[b]),
                             masks.data(), &scratch);
      ASSERT_EQ(masks, expected[b]);
    }
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "warm MatchMaskBatch must not allocate";
}

TEST(BatchKernelPropertyTest, ScalarForcedDispatchNeverSelectsVectorIsa) {
  // The contract the scalar-forced CI leg enforces: with FDC_SIMD set to
  // scalar/off, ActiveIsa() must be kScalar — a vector pick here fails the
  // forced-off suite run.
  const char* env = std::getenv("FDC_SIMD");
  if (env != nullptr &&
      (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "off") == 0 ||
       std::strcmp(env, "0") == 0)) {
    EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
  } else if (env == nullptr || *env == '\0' ||
             std::strcmp(env, "auto") == 0) {
    EXPECT_EQ(simd::ActiveIsa(), simd::DetectIsa());
  }
  // ForceIsa pins scalar everywhere and clamps unavailable vector requests
  // to scalar instead of faulting.
  {
    ScopedIsa forced(simd::Isa::kScalar);
    EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
  }
  if (simd::DetectIsa() == simd::Isa::kScalar) {
    ScopedIsa forced(simd::Isa::kAvx2);
    EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
  }
  EXPECT_TRUE(simd::IsaAvailable(simd::Isa::kScalar));
  EXPECT_TRUE(simd::IsaAvailable(simd::DetectIsa()));
}

}  // namespace
}  // namespace fdc::label
