#include "policy/policy_store.h"

#include <gtest/gtest.h>

#include <memory>

#include "fb/fb_audit.h"
#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "label/pipeline.h"
#include "policy/reference_monitor.h"
#include "workload/label_stream.h"
#include "workload/policy_generator.h"

namespace fdc::policy {
namespace {

class PolicyStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = fb::BuildFacebookSchema();
    catalog_ = std::make_unique<label::ViewCatalog>(&schema_);
    ASSERT_TRUE(fb::RegisterFacebookViews(catalog_.get()).ok());
    pipeline_ = std::make_unique<label::LabelerPipeline>(catalog_.get());
  }

  cq::Schema schema_;
  std::unique_ptr<label::ViewCatalog> catalog_;
  std::unique_ptr<label::LabelerPipeline> pipeline_;
};

TEST_F(PolicyStoreTest, MatchesPerPrincipalMonitors) {
  // The flat store must make exactly the decisions the object-per-principal
  // reference monitor makes, on identical random inputs.
  workload::PolicyOptions options;
  options.max_partitions = 5;
  options.max_elements_per_partition = 12;
  workload::PolicyGenerator policy_gen(catalog_.get(), options, 5150);

  const int kPrincipals = 40;
  std::vector<SecurityPolicy> policies;
  std::vector<PrincipalState> monitor_states;
  PolicyStore store(schema_.NumRelations());
  store.Reserve(kPrincipals, options.max_partitions);
  for (int p = 0; p < kPrincipals; ++p) {
    policies.push_back(policy_gen.Next());
    monitor_states.push_back(
        ReferenceMonitor(&policies.back()).InitialState());
    auto id = store.AddPrincipal(policies.back());
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, static_cast<uint32_t>(p));
  }

  auto stream = workload::GenerateLabelStream(*pipeline_, 3000, kPrincipals,
                                              909);
  int accepted = 0;
  for (const workload::LabeledQuery& lq : stream) {
    ReferenceMonitor monitor(&policies[lq.principal]);
    const bool expected =
        monitor.Submit(&monitor_states[lq.principal], lq.label);
    const bool got = store.Submit(lq.principal, lq.label);
    ASSERT_EQ(expected, got);
    EXPECT_EQ(monitor_states[lq.principal].consistent,
              store.ConsistentPartitions(lq.principal));
    accepted += got ? 1 : 0;
  }
  EXPECT_GT(accepted, 0);
}

TEST_F(PolicyStoreTest, StatelessIgnoresState) {
  const label::SecurityView* v = catalog_->FindByName("user_likes");
  ASSERT_NE(v, nullptr);
  const label::SecurityView* w = catalog_->FindByName("user_birthday");
  ASSERT_NE(w, nullptr);
  auto policy = SecurityPolicy::Compile(
      *catalog_, {{"likes", {v->id}}, {"bday", {w->id}}});
  ASSERT_TRUE(policy.ok());

  PolicyStore store(schema_.NumRelations());
  ASSERT_TRUE(store.AddPrincipal(*policy).ok());

  label::DisclosureLabel likes =
      pipeline_->LabelPacked(fb::MakeAttributeQuery(schema_, "likes",
                                                    fb::kSelf));
  label::DisclosureLabel bday = pipeline_->LabelPacked(
      fb::MakeAttributeQuery(schema_, "birthday", fb::kSelf));

  ASSERT_TRUE(store.Submit(0, likes));  // locks partition 0
  EXPECT_FALSE(store.Submit(0, bday));  // Chinese Wall blocks
  // Stateless check still accepts birthday on its own.
  EXPECT_TRUE(store.CheckStateless(0, bday));
}

TEST_F(PolicyStoreTest, ResetRestoresAllPartitions) {
  workload::PolicyOptions options;
  workload::PolicyGenerator policy_gen(catalog_.get(), options, 8);
  PolicyStore store(schema_.NumRelations());
  SecurityPolicy policy = policy_gen.Next();
  ASSERT_TRUE(store.AddPrincipal(policy).ok());
  const uint64_t initial = store.ConsistentPartitions(0);

  auto stream = workload::GenerateLabelStream(*pipeline_, 50, 1, 2);
  for (const auto& lq : stream) store.Submit(0, lq.label);
  store.ResetStates();
  EXPECT_EQ(store.ConsistentPartitions(0), initial);
}

TEST_F(PolicyStoreTest, TopLabelRefused) {
  workload::PolicyOptions options;
  workload::PolicyGenerator policy_gen(catalog_.get(), options, 44);
  PolicyStore store(schema_.NumRelations());
  ASSERT_TRUE(store.AddPrincipal(policy_gen.Next()).ok());
  label::DisclosureLabel top;
  top.MarkTop();
  EXPECT_FALSE(store.Submit(0, top));
  EXPECT_FALSE(store.CheckStateless(0, top));
}

TEST_F(PolicyStoreTest, MemoryStaysCompact) {
  workload::PolicyOptions options;
  options.max_partitions = 5;
  workload::PolicyGenerator policy_gen(catalog_.get(), options, 1234);
  PolicyStore store(schema_.NumRelations());
  const int kPrincipals = 1000;
  store.Reserve(kPrincipals, 5);
  for (int i = 0; i < kPrincipals; ++i) {
    ASSERT_TRUE(store.AddPrincipal(policy_gen.Next()).ok());
  }
  // ≤ ~350 bytes/principal: 5 partitions × 8 relations × 8B (one 64-bit
  // mask word per relation — the wide-capable layout) + metadata.
  EXPECT_LT(store.MemoryBytes(), kPrincipals * 400u);
}

}  // namespace
}  // namespace fdc::policy
