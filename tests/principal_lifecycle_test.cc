// The principal-state lifecycle (PR 5): bounded live slots, TTL sweeps and
// the residual store that makes eviction *sound* — a reclaimed-then-
// returning principal resumes its narrowing instead of restarting at the
// full partition mask (which would let it extract more than any single
// partition allows).
//
// The load-bearing suites:
//   * a single-shard insert/evict/lookup fuzz against a no-eviction oracle
//     — because residual resumption is lossless, the bounded map must stay
//     *bit-identical* to an unbounded one, which simultaneously proves
//     probe-chain integrity after backward-shift deletions;
//   * an engine-level differential run: a capacity+TTL-bounded engine vs an
//     unbounded oracle engine on a churning principal population, decision-
//     for-decision, across an epoch swap.
#include "engine/principal_map.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/disclosure_engine.h"
#include "test_util.h"
#include "workload/policy_generator.h"

namespace fdc::engine {
namespace {

using test::FbFixture;
using test::RandomWorkload;

constexpr uint64_t kInit = 0b111;

// Narrowing accessor: state &= mask, returns the result.
auto Narrow(uint64_t mask) {
  return [mask](policy::PrincipalState& state) {
    state.consistent &= mask;
    return state.consistent;
  };
}

TEST(PrincipalLifecycleTest, CapacityKeepsLiveSlotsBounded) {
  PrincipalStateMap map(
      PrincipalMapOptions{.shards = 4, .max_principals = 16});
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(map.TryWithState("p" + std::to_string(i), 1, kInit,
                                 Narrow(kInit))
                    .has_value());
    ASSERT_LE(map.NumPrincipals(), 16u) << "after principal " << i;
  }
  const PrincipalStateMap::Stats stats = map.stats();
  EXPECT_EQ(stats.live, map.NumPrincipals());
  EXPECT_GE(stats.capacity_evictions, 200u - 16u);
  EXPECT_EQ(stats.evictions, stats.capacity_evictions + stats.ttl_evictions);
  // None of these principals narrowed below the initial mask, so eviction
  // needs no residuals at all: re-creation restarts at exactly kInit.
  EXPECT_EQ(stats.residuals, 0u);
  EXPECT_EQ(stats.residual_bytes, 0u);
}

TEST(PrincipalLifecycleTest, EvictedPrincipalResumesItsNarrowing) {
  PrincipalStateMap map(
      PrincipalMapOptions{.shards = 1, .max_principals = 2});
  ASSERT_EQ(map.TryWithState("alice", 1, kInit, Narrow(0b001)), 0b001u);
  // Churn enough fresh principals through the 2-slot shard to evict alice;
  // the clock advances between inserts so alice is strictly the LRU slot.
  for (int i = 0; i < 8; ++i) {
    map.AdvanceClock();
    ASSERT_TRUE(map.TryWithState("b" + std::to_string(i), 1, kInit,
                                 Narrow(kInit))
                    .has_value());
  }
  ASSERT_LE(map.NumPrincipals(), 2u);
  PrincipalStateMap::Stats stats = map.stats();
  EXPECT_GT(stats.evictions, 0u);
  ASSERT_EQ(stats.residuals, 1u);  // only alice narrowed
  EXPECT_GT(stats.residual_bytes, 0u);

  // The residual answers reads without recreating a slot...
  EXPECT_EQ(map.Consistent("alice", 1, kInit), 0b001u);
  EXPECT_EQ(map.NumPrincipals(), stats.live);
  // ...and a returning alice resumes at 0b001 — never the full mask.
  const std::optional<uint64_t> resumed =
      map.TryWithState("alice", 1, kInit, [](policy::PrincipalState& state) {
        return state.consistent;
      });
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(*resumed, 0b001u);
  stats = map.stats();
  EXPECT_EQ(stats.residual_hits, 1u);
  // Rehydration copies the record, it does not consume it: a fingerprint-
  // colliding principal returning later must still find the narrowing.
  // The record dies at the next epoch swap.
  EXPECT_EQ(stats.residuals, 1u);
  EXPECT_EQ(map.DropResidualsBefore(2), 1u);
  EXPECT_EQ(map.stats().residuals, 0u);
}

TEST(PrincipalLifecycleTest, TtlSweepReclaimsIdleSlotsOnly) {
  PrincipalStateMap map(
      PrincipalMapOptions{.shards = 1, .idle_ttl_ticks = 2});
  ASSERT_EQ(map.TryWithState("idle", 1, kInit, Narrow(0b010)), 0b010u);
  for (int tick = 0; tick < 3; ++tick) {
    map.AdvanceClock();
    // "hot" is touched every tick and must survive every sweep.
    ASSERT_TRUE(map.TryWithState("hot", 1, kInit, Narrow(kInit)).has_value());
  }
  const size_t evicted = map.Sweep();
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(map.NumPrincipals(), 1u);
  const PrincipalStateMap::Stats stats = map.stats();
  EXPECT_EQ(stats.ttl_evictions, 1u);
  EXPECT_EQ(stats.capacity_evictions, 0u);
  // The idle principal's narrowing survived as a residual.
  EXPECT_EQ(map.Consistent("idle", 1, kInit), 0b010u);
  EXPECT_EQ(map.Consistent("hot", 1, kInit), kInit);
}

TEST(PrincipalLifecycleTest, SweepWithoutTtlIsANoOp) {
  PrincipalStateMap map(PrincipalMapOptions{.shards = 1});
  ASSERT_TRUE(map.TryWithState("p", 1, kInit, Narrow(0b1)).has_value());
  for (int i = 0; i < 5; ++i) map.AdvanceClock();
  EXPECT_EQ(map.Sweep(), 0u);
  EXPECT_EQ(map.NumPrincipals(), 1u);
}

TEST(PrincipalLifecycleTest, EpochSwapDropsResidualsAndRaisesFloor) {
  PrincipalStateMap map(
      PrincipalMapOptions{.shards = 1, .max_principals = 1});
  ASSERT_EQ(map.TryWithState("a", 1, kInit, Narrow(0b001)), 0b001u);
  ASSERT_TRUE(map.TryWithState("b", 1, kInit, Narrow(kInit)).has_value());
  ASSERT_EQ(map.stats().residuals, 1u);  // a evicted, narrowed

  // Epoch 2 publishes: epoch-1 residuals can never be resumed again.
  EXPECT_EQ(map.DropResidualsBefore(2), 1u);
  PrincipalStateMap::Stats stats = map.stats();
  EXPECT_EQ(stats.residuals, 0u);
  EXPECT_EQ(stats.residual_bytes, 0u);  // table freed, not just emptied
  EXPECT_EQ(stats.residual_drops, 1u);

  // Epoch-1 accesses are refused outright — a's epoch-1 narrowing was just
  // forgotten, so letting an epoch-1 straggler re-create state would be
  // the exact unsoundness eviction must avoid. The engine retries such
  // refusals against the current snapshot.
  EXPECT_FALSE(map.TryWithState("a", 1, kInit, Narrow(kInit)).has_value());
  EXPECT_FALSE(map.Consistent("a", 1, kInit).has_value());
  EXPECT_FALSE(map.Consistent("never-seen", 1, kInit).has_value());
  // Epoch-2 accesses restart from the new policy's full mask.
  EXPECT_EQ(map.TryWithState("a", 2, 0b1111, Narrow(0b1111)), 0b1111u);
}

TEST(PrincipalLifecycleTest, ResidualFromNewerEpochRefusesStaleCaller) {
  PrincipalStateMap map(
      PrincipalMapOptions{.shards = 1, .max_principals = 1});
  ASSERT_EQ(map.TryWithState("a", 5, kInit, Narrow(0b100)), 0b100u);
  ASSERT_TRUE(map.TryWithState("b", 5, kInit, Narrow(kInit)).has_value());
  // a's residual is tagged epoch 5; a caller still on epoch 4 is stale.
  EXPECT_FALSE(map.TryWithState("a", 4, kInit, Narrow(kInit)).has_value());
  EXPECT_FALSE(map.Consistent("a", 4, kInit).has_value());
  // The epoch-5 narrowing is intact.
  EXPECT_EQ(map.Consistent("a", 5, kInit), 0b100u);
}

// The central soundness property, fuzzed: because eviction keeps narrowed
// state resumable, a capacity+TTL-bounded single-shard map must stay
// bit-identical to an unbounded oracle over any same-epoch access sequence
// — while backward-shift deletions continuously rearrange the probe chains
// underneath (a naive "hole" deletion breaks chains and loses slots, which
// this fuzz catches immediately).
TEST(PrincipalLifecycleTest, SingleShardFuzzMatchesNoEvictionOracle) {
  constexpr uint64_t kFuzzInit = 0xFFFFull;
  constexpr int kNames = 64;
  PrincipalStateMap map(PrincipalMapOptions{
      .shards = 1, .max_principals = 8, .idle_ttl_ticks = 3});
  std::unordered_map<std::string, uint64_t> oracle;  // never evicts

  Rng rng(0xF00DULL);
  for (int op = 0; op < 20000; ++op) {
    const std::string name =
        "principal-" + std::to_string(rng.Below(kNames));
    if (rng.Chance(0.25)) {
      // Read-only probe: resident slot, residual, or first-touch default.
      const std::optional<uint64_t> got =
          map.Consistent(name, 1, kFuzzInit);
      ASSERT_TRUE(got.has_value());
      const auto it = oracle.find(name);
      ASSERT_EQ(*got, it == oracle.end() ? kFuzzInit : it->second)
          << "op " << op << " name " << name;
    } else {
      // Narrowing access. Keep a random subset — occasionally everything,
      // so some principals never narrow and exercise the no-residual path.
      const uint64_t mask =
          rng.Chance(0.3) ? ~0ULL : (rng.Next() | rng.Next());
      const std::optional<uint64_t> got =
          map.TryWithState(name, 1, kFuzzInit, Narrow(mask));
      ASSERT_TRUE(got.has_value());
      auto [it, inserted] = oracle.try_emplace(name, kFuzzInit);
      it->second &= mask;
      ASSERT_EQ(*got, it->second) << "op " << op << " name " << name;
    }
    if (rng.Chance(0.02)) {
      map.AdvanceClock();
      map.Sweep();
    }
    ASSERT_LE(map.NumPrincipals(), 8u);
  }
  // Every principal ever seen is still answerable, bit-identically.
  for (const auto& [name, bits] : oracle) {
    ASSERT_EQ(map.Consistent(name, 1, kFuzzInit), bits) << name;
  }
  const PrincipalStateMap::Stats stats = map.stats();
  EXPECT_GT(stats.evictions, 0u);      // the fuzz actually churned
  EXPECT_GT(stats.residual_hits, 0u);  // and principals actually returned
}

// Engine-level differential: a bounded engine (capacity 16, TTL, automatic
// sweeps) serving 48 churning principals must be decision-for-decision
// identical to an unbounded oracle engine — including across an epoch
// swap, and including principals that were evicted and returned (their
// resumed narrowing must refuse exactly what the oracle refuses: no
// post-eviction widening, no spurious refusals).
TEST(PrincipalLifecycleTest, BoundedEngineMatchesUnboundedOracle) {
  FbFixture fb;
  policy::SecurityPolicy policy_a =
      workload::PolicyGenerator(&fb.catalog, {}, 0xabba01ULL).Next();
  policy::SecurityPolicy policy_b =
      workload::PolicyGenerator(&fb.catalog, {}, 0xabba02ULL).Next();
  const auto pool = RandomWorkload(&fb.schema, 2, 256, 0x1234'5678ULL);

  EngineOptions bounded_options;
  bounded_options.principals.shards = 4;
  bounded_options.principals.max_principals = 16;
  bounded_options.principals.idle_ttl_ticks = 2;
  bounded_options.principal_sweep_interval = 64;
  DisclosureEngine bounded(/*db=*/nullptr, &fb.catalog, policy_a,
                           bounded_options);
  DisclosureEngine oracle(/*db=*/nullptr, &fb.catalog, policy_a);

  constexpr int kPrincipals = 48;
  constexpr int kRounds = 40;
  auto name_of = [](int p) { return "churn-" + std::to_string(p); };
  Rng rng(0x5eedULL);
  for (int round = 0; round < kRounds; ++round) {
    // Round-robin across all principals: everyone keeps returning long
    // after the bounded engine evicted them.
    for (int p = 0; p < kPrincipals; ++p) {
      const cq::ConjunctiveQuery& query = pool[rng.Below(pool.size())];
      ASSERT_EQ(bounded.Submit(name_of(p), query),
                oracle.Submit(name_of(p), query))
          << "principal " << p << " diverged in round " << round;
    }
    if (round == kRounds / 2) {
      // Epoch swap on both engines at the same sequence point.
      ASSERT_EQ(bounded.UpdatePolicy(policy_b), oracle.UpdatePolicy(policy_b));
    }
  }
  for (int p = 0; p < kPrincipals; ++p) {
    EXPECT_EQ(bounded.ConsistentPartitions(name_of(p)),
              oracle.ConsistentPartitions(name_of(p)))
        << "principal " << p;
  }
  const DisclosureEngine::EngineStats stats = bounded.Stats();
  EXPECT_LE(stats.num_principals, 16u);
  EXPECT_GT(stats.principal_map.evictions, 0u);
  EXPECT_GT(stats.principal_map.residual_hits, 0u);
  // The swap dropped every epoch-1 residual.
  EXPECT_EQ(oracle.Stats().num_principals,
            static_cast<size_t>(kPrincipals));
  EXPECT_EQ(stats.submitted, oracle.Stats().submitted);
}

}  // namespace
}  // namespace fdc::engine
