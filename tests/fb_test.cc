#include <gtest/gtest.h>

#include "fb/fb_audit.h"
#include "fb/fb_documentation.h"
#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "label/pipeline.h"
#include "test_util.h"

namespace fdc::fb {
namespace {

class FbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = BuildFacebookSchema();
    catalog_ = std::make_unique<label::ViewCatalog>(&schema_);
    auto added = RegisterFacebookViews(catalog_.get());
    ASSERT_TRUE(added.ok()) << added.status().ToString();
    views_added_ = *added;
  }

  cq::Schema schema_;
  std::unique_ptr<label::ViewCatalog> catalog_;
  int views_added_ = 0;
};

// ---- Schema shape (§7.2) ---------------------------------------------------

TEST_F(FbTest, EightRelations) {
  EXPECT_EQ(schema_.NumRelations(), 8);
}

TEST_F(FbTest, UserHas34Attributes) {
  EXPECT_EQ(schema_.Find(kUser)->arity(), 34);
}

TEST_F(FbTest, OtherRelationsHave3To10Attributes) {
  for (const cq::RelationDef& rel : schema_.relations()) {
    if (rel.name == kUser) continue;
    EXPECT_GE(rel.arity(), 3) << rel.name;
    EXPECT_LE(rel.arity(), 10) << rel.name;
  }
}

TEST_F(FbTest, EveryRelationHasOwnerAndViewerRel) {
  for (const cq::RelationDef& rel : schema_.relations()) {
    EXPECT_GE(OwnerUidIndex(schema_, rel.id), 0) << rel.name;
    EXPECT_GE(ViewerRelIndex(schema_, rel.id), 0) << rel.name;
  }
}

// ---- View catalog (§7.2) ----------------------------------------------------

TEST_F(FbTest, SixteenUserViews) {
  const int user = schema_.Find(kUser)->id;
  EXPECT_EQ(catalog_->ViewsOfRelation(user).size(), 16u);
}

TEST_F(FbTest, ThreeViewsPerOtherRelation) {
  for (const cq::RelationDef& rel : schema_.relations()) {
    if (rel.name == kUser) continue;
    EXPECT_EQ(catalog_->ViewsOfRelation(rel.id).size(), 3u) << rel.name;
  }
}

TEST_F(FbTest, TotalViewCount) {
  EXPECT_EQ(views_added_, 16 + 7 * 3);
  EXPECT_EQ(catalog_->size(), 37);
  EXPECT_LE(catalog_->MaxViewsPerRelation(), 32);  // packed labels fit
}

TEST_F(FbTest, PermissionNamesResolvable) {
  for (const char* name :
       {"public_profile", "self_profile", "user_likes", "friends_likes",
        "user_birthday", "friends_birthday", "friend_list_public",
        "user_photos", "friends_statuses"}) {
    EXPECT_NE(catalog_->FindByName(name), nullptr) << name;
  }
}

// ---- Attribute-query labeling ----------------------------------------------

TEST_F(FbTest, SelfBirthdayNeedsUserBirthday) {
  label::LabelerPipeline pipeline(catalog_.get());
  auto q = MakeAttributeQuery(schema_, "birthday", kSelf);
  label::SetLabel label = pipeline.LabelHashed(q);
  ASSERT_EQ(label.per_atom.size(), 1u);
  ASSERT_EQ(label.per_atom[0].size(), 1u);
  EXPECT_EQ(catalog_->view(*label.per_atom[0].begin()).name, "user_birthday");
}

TEST_F(FbTest, FriendBirthdayNeedsFriendsBirthday) {
  label::LabelerPipeline pipeline(catalog_.get());
  auto q = MakeAttributeQuery(schema_, "birthday", kFriendRel);
  label::SetLabel label = pipeline.LabelHashed(q);
  ASSERT_EQ(label.per_atom.size(), 1u);
  ASSERT_EQ(label.per_atom[0].size(), 1u);
  EXPECT_EQ(catalog_->view(*label.per_atom[0].begin()).name, "friends_birthday");
}

TEST_F(FbTest, PublicAttributeNeedsNoGroupPermission) {
  label::LabelerPipeline pipeline(catalog_.get());
  auto q = MakeAttributeQuery(schema_, "name", kOther);
  label::SetLabel label = pipeline.LabelHashed(q);
  ASSERT_EQ(label.per_atom.size(), 1u);
  ASSERT_EQ(label.per_atom[0].size(), 1u);
  EXPECT_EQ(catalog_->view(*label.per_atom[0].begin()).name, "public_profile");
}

TEST_F(FbTest, EveryViewIsItsOwnFixpoint) {
  // Definition 3.4(b): labels of the security views themselves are
  // fixpoints. For every catalog view, labeling its defining query must
  // include the view in its own ℓ+ set, and every other view in the set
  // must be mutually rewritable-from (≡ or above).
  label::LabelerPipeline pipeline(catalog_.get());
  for (const label::SecurityView& view : catalog_->views()) {
    cq::ConjunctiveQuery def = view.pattern.ToQuery(view.name);
    label::SetLabel label = pipeline.LabelHashed(def);
    ASSERT_FALSE(label.top) << view.name;
    ASSERT_EQ(label.per_atom.size(), 1u) << view.name;
    EXPECT_TRUE(label.per_atom[0].contains(view.id)) << view.name;
  }
}

TEST_F(FbTest, ViewsWithinRelationMostlyIncomparable) {
  // The 16 User views form a generating set: apart from the deliberate
  // overlap between self_profile and the group views (disjoint attribute
  // sets, so none), no view should subsume another. A subsumption would be
  // a redundant permission (§2.2's smell).
  label::LabelerPipeline pipeline(catalog_.get());
  const int user = schema_.Find(kUser)->id;
  for (int a : catalog_->ViewsOfRelation(user)) {
    cq::ConjunctiveQuery def = catalog_->view(a).pattern.ToQuery("V");
    label::SetLabel label = pipeline.LabelHashed(def);
    EXPECT_EQ(label.per_atom[0].size(), 1u)
        << catalog_->view(a).name << " subsumed by another view";
  }
}

TEST_F(FbTest, FofGroupedAttributeIsTop) {
  label::LabelerPipeline pipeline(catalog_.get());
  auto q = MakeAttributeQuery(schema_, "birthday", kFof);
  EXPECT_TRUE(pipeline.LabelHashed(q).top);
}

TEST_F(FbTest, JoinBasedFriendQueryLabels) {
  // The §7.2 workload shape: Friend('me', f) ⋈ User(f, 'friend', ...).
  const int user = schema_.Find(kUser)->id;
  const int fr = schema_.Find(kFriend)->id;
  const cq::RelationDef* user_def = schema_.FindById(user);
  std::vector<cq::Term> user_terms;
  std::vector<cq::Term> head;
  const int uid_idx = user_def->AttributeIndex("uid");
  const int rel_idx = user_def->AttributeIndex("viewer_rel");
  const int bday_idx = user_def->AttributeIndex("birthday");
  for (int i = 0; i < user_def->arity(); ++i) {
    if (i == uid_idx) {
      user_terms.push_back(cq::Term::Var(0));
    } else if (i == rel_idx) {
      user_terms.push_back(cq::Term::Const(kFriendRel));
    } else {
      user_terms.push_back(cq::Term::Var(10 + i));
      if (i == bday_idx) head.push_back(cq::Term::Var(10 + i));
    }
  }
  cq::ConjunctiveQuery q(
      "Q", head,
      {cq::Atom(fr, {cq::Term::Const("me"), cq::Term::Var(0),
                     cq::Term::Var(1)}),
       cq::Atom(user, user_terms)});
  ASSERT_TRUE(q.Validate(schema_).ok());

  label::LabelerPipeline pipeline(catalog_.get());
  label::SetLabel label = pipeline.LabelHashed(q);
  EXPECT_FALSE(label.top);
  ASSERT_EQ(label.per_atom.size(), 2u);
  // Friend atom covered by friend_list_public; User atom by
  // friends_birthday.
  std::vector<std::string> names;
  for (const auto& per_atom : label.per_atom) {
    for (int id : per_atom) names.push_back(catalog_->view(id).name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "friends_birthday"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "friend_list_public"),
            names.end());
}

// ---- Documentation tables ----------------------------------------------------

TEST(FbDocumentationTest, FortyTwoViews) {
  EXPECT_EQ(DocumentedUserViews().size(), 42u);
}

TEST(FbDocumentationTest, ExactlySixInconsistent) {
  int inconsistent = 0;
  for (const DocumentedView& doc : DocumentedUserViews()) {
    if (!(doc.fql == doc.graph)) ++inconsistent;
  }
  EXPECT_EQ(inconsistent, 6);
}

TEST(FbDocumentationTest, ActualAlwaysMatchesOneDoc) {
  for (const DocumentedView& doc : DocumentedUserViews()) {
    EXPECT_TRUE(doc.actual == doc.fql || doc.actual == doc.graph)
        << doc.attribute;
  }
}

TEST(FbDocumentationTest, RequirementToString) {
  EXPECT_EQ(Requirement::None().ToString(), "none");
  EXPECT_EQ(Requirement::Any().ToString(), "any");
  EXPECT_EQ(Requirement::Forbidden().ToString(), "forbidden");
  EXPECT_EQ(Requirement::Perms({"a", "b"}).ToString(), "a or b");
}

// ---- The audit (Table 2) ------------------------------------------------------

TEST_F(FbTest, AuditReproducesTable2) {
  AuditResult result = RunFacebookAudit(*catalog_);
  EXPECT_EQ(result.total_views, 42);
  EXPECT_EQ(result.consistent, 36);
  ASSERT_EQ(result.inconsistencies.size(), 6u);

  // The six attributes of Table 2, in order.
  const std::vector<std::string> expected_attrs = {
      "pic", "timezone", "devices", "relationship_status", "quotes",
      "profile_url"};
  const std::vector<std::string> expected_correct = {
      "FQL", "Graph API", "Graph API", "Graph API", "FQL", "FQL"};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result.inconsistencies[i].attribute, expected_attrs[i]);
    EXPECT_EQ(result.inconsistencies[i].correct_api, expected_correct[i]);
  }
}

TEST_F(FbTest, AuditLabelerCrossCheckClean) {
  // The data-derived labeler agrees with observed behaviour on every
  // permission-guarded attribute — the paper's core claim.
  AuditResult result = RunFacebookAudit(*catalog_);
  EXPECT_TRUE(result.labeler_mismatches.empty())
      << "first mismatch: "
      << (result.labeler_mismatches.empty() ? ""
                                            : result.labeler_mismatches[0]);
}

TEST_F(FbTest, RenderTable2Shape) {
  AuditResult result = RunFacebookAudit(*catalog_);
  std::string table = RenderTable2(result);
  EXPECT_NE(table.find("pic"), std::string::npos);
  EXPECT_NE(table.find("quotes"), std::string::npos);
  EXPECT_NE(table.find("6 of 42"), std::string::npos);
}

}  // namespace
}  // namespace fdc::fb
