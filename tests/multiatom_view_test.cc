#include "label/multiatom_view.h"

#include <gtest/gtest.h>

#include "rewriting/containment.h"
#include "test_util.h"

namespace fdc::label {
namespace {

using cq::ConjunctiveQuery;
using cq::Schema;

// Schema with an explicit Friend table to express the paper's motivating
// join view: "there is a permission that allows a Facebook app to see the
// birthdays of all of a user's Facebook friends. Formally, this can be
// modeled using a join between the User relation and the Friend relation."
class MultiAtomViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    (void)schema_.AddRelation("U", {"uid", "birthday", "likes"});
    (void)schema_.AddRelation("F", {"uid1", "uid2"});
  }

  Schema schema_;
};

TEST_F(MultiAtomViewTest, FriendsBirthdaysJoinView) {
  // friends_birthday(f, b) :- F('me', f), U(f, b, l)
  auto view = test::Q("W(f, b) :- F('me', f), U(f, b, l)", schema_);
  // Query: exactly the friends' birthdays.
  auto query = test::Q("Q(f, b) :- F('me', f), U(f, b, l)", schema_);
  EXPECT_TRUE(RewritableFromView(query, view));

  // Projection of the view: just the birthday values of friends.
  auto bdays = test::Q("Q(b) :- F('me', f), U(f, b, l)", schema_);
  EXPECT_TRUE(RewritableFromView(bdays, view));

  // Selection over the view: is some friend born on '0101'?
  auto born = test::Q("Q(f) :- F('me', f), U(f, '0101', l)", schema_);
  EXPECT_TRUE(RewritableFromView(born, view));
}

TEST_F(MultiAtomViewTest, ViewDoesNotLeakOtherColumns) {
  auto view = test::Q("W(f, b) :- F('me', f), U(f, b, l)", schema_);
  // Friends' likes are NOT determined by the birthday view.
  auto likes = test::Q("Q(f, l) :- F('me', f), U(f, b, l)", schema_);
  EXPECT_FALSE(RewritableFromView(likes, view));
  // Non-friend birthdays are not determined either.
  auto all_bdays = test::Q("Q(u, b) :- U(u, b, l)", schema_);
  EXPECT_FALSE(RewritableFromView(all_bdays, view));
}

TEST_F(MultiAtomViewTest, OtherPrincipalsFriendsNotCovered) {
  auto view = test::Q("W(f, b) :- F('me', f), U(f, b, l)", schema_);
  auto other = test::Q("Q(f, b) :- F('bob', f), U(f, b, l)", schema_);
  EXPECT_FALSE(RewritableFromView(other, view));
}

TEST_F(MultiAtomViewTest, WitnessUnfoldsToEquivalentQuery) {
  auto view = test::Q("W(f, b) :- F('me', f), U(f, b, l)", schema_);
  auto query = test::Q("Q(b) :- F('me', f), U(f, b, l)", schema_);
  auto witness = FindViewRewriting(query, view);
  ASSERT_TRUE(witness.has_value());
  ConjunctiveQuery unfolded = UnfoldViewRewriting(*witness, view);
  EXPECT_TRUE(rewriting::AreEquivalent(unfolded, query));
}

TEST_F(MultiAtomViewTest, FoldedRedundancyHandled) {
  auto view = test::Q("W(f, b) :- F('me', f), U(f, b, l)", schema_);
  // Redundant duplicate atom folds away before matching.
  auto query =
      test::Q("Q(b) :- F('me', f), U(f, b, l), U(f, b, l2)", schema_);
  EXPECT_TRUE(RewritableFromView(query, view));
}

TEST_F(MultiAtomViewTest, SingleAtomViewsStillWork) {
  // The extension subsumes the single-atom case.
  auto view = test::Q("W(u, b) :- U(u, b, l)", schema_);
  auto query = test::Q("Q(b) :- U(u, b, l)", schema_);
  EXPECT_TRUE(RewritableFromView(query, view));
  auto too_much = test::Q("Q(l) :- U(u, b, l)", schema_);
  EXPECT_FALSE(RewritableFromView(too_much, view));
}

TEST_F(MultiAtomViewTest, BooleanQueriesOverViews) {
  auto view = test::Q("W(f, b) :- F('me', f), U(f, b, l)", schema_);
  // "Do I have any friend with a recorded birthday?"
  auto any = test::Q("Q() :- F('me', f), U(f, b, l)", schema_);
  EXPECT_TRUE(RewritableFromView(any, view));
  // "Is the Friend table nonempty?" reveals strictly less than W answers
  // for, but is not computable from W (a user with no friends and a user
  // whose friends lack U rows both yield empty W).
  auto nonempty = test::Q("Q() :- F(x, y)", schema_);
  EXPECT_FALSE(RewritableFromView(nonempty, view));
}

TEST_F(MultiAtomViewTest, EqualityConstraintsViaRepeatedColumns) {
  auto view = test::Q("W(a, b) :- F(a, b)", schema_);
  // Self-loops in the friendship graph: needs σ_{1=2}(W).
  auto loops = test::Q("Q(x) :- F(x, x)", schema_);
  EXPECT_TRUE(RewritableFromView(loops, view));
}

}  // namespace
}  // namespace fdc::label
