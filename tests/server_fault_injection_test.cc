// Fault-injection acceptance suite for the serving front end.
//
// Four layers of guarantees, all driven through the deterministic syscall
// failpoint harness (server/failpoints.h):
//   1. Harness contract: same seed → identical fault schedule; short IO
//      never loses or duplicates a byte; close(2) always releases the fd.
//   2. Deadline lifecycle: half-open peers are reaped at the handshake
//      deadline, quiescent sessions at the idle TTL, and both surface a
//      kError/kDeadlineExceeded frame before the close.
//   3. Degradation: the connection-limit and fd-exhaustion paths shed with
//      a genuinely flushed kServerBusy frame; graceful drain answers every
//      in-flight submit and announces kGoingAway.
//   4. The capstone storm: per seed, a benign fault storm under pipelined
//      load and a lethal storm under reconnecting call/response clients —
//      decisions stay bit-identical to a fault-free twin engine, and the
//      process ends with exactly the fd count it started with (the CI
//      fault-injection job runs this suite under ASan+UBSan, so leaked
//      memory fails it too). Seeds come from FDC_FAULT_SEEDS when set.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "cq/printer.h"
#include "engine/disclosure_engine.h"
#include "server/byte_queue.h"
#include "server/client.h"
#include "server/disclosure_server.h"
#include "server/failpoints.h"
#include "server/protocol.h"
#include "test_util.h"
#include "workload/policy_generator.h"

namespace fdc::server {
namespace {

using test::FbFixture;
using test::RandomWorkload;

// Open descriptors for the whole process — the leak oracle. The readdir
// handle itself is open during the walk on both the baseline and the
// final count, so the bias cancels.
int CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int n = 0;
  while (readdir(dir) != nullptr) ++n;
  closedir(dir);
  return n;
}

struct ServerFixture {
  FbFixture fb;
  policy::SecurityPolicy policy;
  engine::DisclosureEngine engine;
  DisclosureServer server;

  explicit ServerFixture(uint64_t policy_seed = 3, ServerOptions opts = {})
      : policy([&] {
          workload::PolicyOptions popts;
          popts.max_partitions = 5;
          popts.max_elements_per_partition = 15;
          return workload::PolicyGenerator(&fb.catalog, popts, policy_seed)
              .Next();
        }()),
        engine(/*db=*/nullptr, &fb.catalog, policy),
        server(&engine, opts) {
    Status s = server.Start();
    if (!s.ok()) {
      ADD_FAILURE() << s.ToString();
      std::abort();
    }
  }
  ~ServerFixture() { server.Stop(); }
};

// A connected TCP socket that never speaks the protocol — the half-open
// peer the handshake deadline exists for.
int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Reads until EOF and returns everything received.
std::vector<uint8_t> DrainToEof(int fd) {
  std::vector<uint8_t> bytes;
  uint8_t chunk[512];
  for (;;) {
    const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    bytes.insert(bytes.end(), chunk, chunk + r);
  }
  return bytes;
}

// --- 1. harness contract -------------------------------------------------

TEST(FailpointsTest, SameSeedReplaysIdenticalSchedule) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  const char payload[64] = "schedule determinism probe";
  failpoints::Config cfg;
  cfg.seed = 0xfa17ULL;
  cfg.rate = 0.6;
  cfg.lethal_rate = 0.1;
  cfg.short_io = 0.5;
  cfg.ops = failpoints::kRecv | failpoints::kSend;

  // Record what 200 identical send attempts inject, twice.
  auto run = [&] {
    failpoints::ScopedFailpoints scoped(cfg);
    failpoints::ResetStats();
    std::vector<long> outcomes;
    for (int i = 0; i < 200; ++i) {
      errno = 0;
      const ssize_t n = failpoints::Send(sp[0], payload, sizeof(payload), 0);
      outcomes.push_back(n >= 0 ? n : -errno);
      // Keep the pipe from filling: drain whatever really landed.
      char sink[256];
      while (::recv(sp[1], sink, sizeof(sink), MSG_DONTWAIT) > 0) {
      }
    }
    const failpoints::Stats stats = failpoints::Current();
    EXPECT_EQ(stats.calls, 200u);
    EXPECT_GT(stats.faults, 50u);
    return outcomes;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  ::close(sp[0]);
  ::close(sp[1]);
}

TEST(FailpointsTest, ShortIoNeverLosesBytes) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  constexpr size_t kTotal = 1 << 16;
  std::vector<uint8_t> sent(kTotal);
  Rng rng(0x10ULL);
  for (auto& b : sent) b = static_cast<uint8_t>(rng.Below(256));

  failpoints::Config cfg;
  cfg.seed = 0x5107ULL;
  cfg.rate = 0.7;
  cfg.short_io = 0.8;
  cfg.ops = failpoints::kRecv | failpoints::kSend;
  failpoints::ScopedFailpoints scoped(cfg);

  // Writer pushes through the faulty Send; reader pulls through the
  // faulty Recv. Both absorb EINTR/EAGAIN and resume short transfers —
  // the discipline every caller in the server follows.
  std::thread writer([&] {
    size_t off = 0;
    while (off < kTotal) {
      const ssize_t n =
          failpoints::Send(sp[0], sent.data() + off, kTotal - off, 0);
      if (n < 0) {
        ASSERT_TRUE(errno == EINTR || errno == EAGAIN);
        continue;
      }
      off += static_cast<size_t>(n);
    }
    ::shutdown(sp[0], SHUT_WR);
  });
  std::vector<uint8_t> got;
  uint8_t chunk[4096];
  for (;;) {
    const ssize_t n = failpoints::Recv(sp[1], chunk, sizeof(chunk), 0);
    if (n < 0) {
      ASSERT_TRUE(errno == EINTR || errno == EAGAIN);
      continue;
    }
    if (n == 0) break;
    got.insert(got.end(), chunk, chunk + n);
  }
  writer.join();
  EXPECT_EQ(got, sent);
  const failpoints::Stats stats = failpoints::Current();
  EXPECT_GT(stats.short_reads + stats.short_writes, 0u);
  ::close(sp[0]);
  ::close(sp[1]);
}

TEST(FailpointsTest, CloseAlwaysReleasesTheDescriptor) {
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  failpoints::Config cfg;
  cfg.seed = 9;
  cfg.rate = 1.0;  // every close call reports EINTR...
  cfg.ops = failpoints::kClose;
  {
    failpoints::ScopedFailpoints scoped(cfg);
    errno = 0;
    EXPECT_EQ(failpoints::Close(pipe_fds[0]), -1);
    EXPECT_EQ(errno, EINTR);
  }
  // ...but the fd is gone regardless (Linux close semantics).
  errno = 0;
  EXPECT_EQ(::close(pipe_fds[0]), -1);
  EXPECT_EQ(errno, EBADF);
  EXPECT_EQ(::close(pipe_fds[1]), 0);
}

TEST(FailpointsTest, EnableFromEnvParsesAndRejects) {
  EXPECT_TRUE(failpoints::EnableFromEnv(
      "seed=7,rate=0.25,lethal=0.01,ops=recv|send,short=0.5"));
  EXPECT_TRUE(failpoints::Enabled());
  failpoints::Disable();

  EXPECT_FALSE(failpoints::EnableFromEnv(nullptr));   // unset
  EXPECT_FALSE(failpoints::EnableFromEnv(""));        // empty
  EXPECT_FALSE(failpoints::EnableFromEnv("bogus=1")); // unknown key
  EXPECT_FALSE(failpoints::EnableFromEnv("rate=x"));  // malformed value
  EXPECT_FALSE(failpoints::Enabled());
}

TEST(FailpointsTest, EnableFromEnvRejectsNonFiniteRates) {
  // NaN compares false against both range bounds, so the old
  // `rate < 0.0 || rate > 1.0` check accepted it; strtod parses all of
  // these spellings "successfully".
  for (const char* spec :
       {"rate=nan", "rate=NaN", "rate=inf", "rate=-inf", "rate=1e999",
        "lethal=nan", "lethal=inf", "short=nan", "short=inf"}) {
    EXPECT_FALSE(failpoints::EnableFromEnv(spec)) << spec;
  }
  EXPECT_FALSE(failpoints::Enabled());
  // The finite boundaries stay accepted.
  EXPECT_TRUE(failpoints::EnableFromEnv("rate=1.0,lethal=0.0,short=0.0"));
  failpoints::Disable();
}

TEST(FailpointsTest, EnableFromEnvRejectsSeedOverflowAndSign) {
  // strtoull clamps past-2^64 input to ULLONG_MAX with errno=ERANGE and
  // wraps a negative sign "successfully" — both must be rejected, not
  // silently turned into a seed the operator never wrote.
  for (const char* spec :
       {"seed=99999999999999999999999", "seed=-1", "seed=+1", "seed= 1",
        "seed=0x10", "rate=0.5,seed=18446744073709551616"}) {
    EXPECT_FALSE(failpoints::EnableFromEnv(spec)) << spec;
  }
  EXPECT_FALSE(failpoints::Enabled());
  // The largest representable seed is fine.
  EXPECT_TRUE(failpoints::EnableFromEnv("seed=18446744073709551615,rate=0"));
  failpoints::Disable();
}

// --- 2. deadline lifecycle -----------------------------------------------

TEST(ServerDeadlineTest, HalfOpenPeerIsReapedAtHandshakeDeadline) {
  ServerOptions opts;
  opts.handshake_timeout_ms = 40;
  opts.tick_interval_ms = 10;
  ServerFixture fx(/*policy_seed=*/3, opts);

  const int fd = RawConnect(fx.server.port());
  ASSERT_GE(fd, 0);
  // Say nothing. The server must volunteer the deadline error and close.
  const std::vector<uint8_t> bytes = DrainToEof(fd);
  ::close(fd);

  FrameView frame;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame).status,
            DecodeStatus::kFrame);
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorPayload err;
  ASSERT_TRUE(ParseError(frame.payload, &err));
  EXPECT_EQ(err.code, ErrorCode::kDeadlineExceeded);

  const DisclosureServer::Stats stats = fx.server.stats();
  EXPECT_EQ(stats.handshake_reaps, 1u);
  EXPECT_EQ(stats.idle_reaps, 0u);
}

TEST(ServerDeadlineTest, QuiescentSessionIsReapedAtIdleTtl) {
  ServerOptions opts;
  opts.idle_timeout_ms = 40;
  opts.tick_interval_ms = 10;
  ServerFixture fx(/*policy_seed=*/3, opts);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.server.port(), "idler").ok());
  // Go quiet; the next frame on the wire must be the reap notice.
  ClientResponse resp;
  ASSERT_TRUE(client.ReadResponse(&resp).ok());
  EXPECT_EQ(resp.type, FrameType::kError);
  EXPECT_EQ(resp.error, ErrorCode::kDeadlineExceeded);
  uint64_t epoch = 0;
  EXPECT_FALSE(client.Ping(&epoch).ok());  // connection is gone

  const DisclosureServer::Stats stats = fx.server.stats();
  EXPECT_EQ(stats.idle_reaps, 1u);
  EXPECT_EQ(stats.handshake_reaps, 0u);
}

TEST(ServerDeadlineTest, ActiveSessionOutlivesManyIdleWindows) {
  ServerOptions opts;
  opts.idle_timeout_ms = 60;
  opts.tick_interval_ms = 10;
  ServerFixture fx(/*policy_seed=*/3, opts);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.server.port(), "active").ok());
  // Ten pings spread over several idle windows: traffic keeps the session
  // alive because every byte in either direction resets the clock.
  for (int i = 0; i < 10; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    uint64_t epoch = 0;
    ASSERT_TRUE(client.Ping(&epoch).ok()) << "reaped mid-session at " << i;
  }
  EXPECT_EQ(fx.server.stats().idle_reaps, 0u);
}

// --- 3. degradation ------------------------------------------------------

TEST(ServerOverloadTest, BusyFrameIsFlushedBeforeTheShedClose) {
  ServerOptions opts;
  opts.max_connections = 1;
  ServerFixture fx(/*policy_seed=*/3, opts);

  BlockingClient holder;
  ASSERT_TRUE(holder.Connect("127.0.0.1", fx.server.port(), "holder").ok());

  // The over-limit peer must actually receive kServerBusy, not a bare RST:
  // the shed path does a bounded best-effort flush before closing.
  const int fd = RawConnect(fx.server.port());
  ASSERT_GE(fd, 0);
  const std::vector<uint8_t> bytes = DrainToEof(fd);
  ::close(fd);

  FrameView frame;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame).status,
            DecodeStatus::kFrame);
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorPayload err;
  ASSERT_TRUE(ParseError(frame.payload, &err));
  EXPECT_EQ(err.code, ErrorCode::kServerBusy);
  EXPECT_EQ(fx.server.stats().connections_rejected, 1u);

  uint64_t epoch = 0;
  EXPECT_TRUE(holder.Ping(&epoch).ok());  // the held slot was untouched
}

TEST(ServerOverloadTest, FdExhaustionShedsAndRecovers) {
  // Inject EMFILE/ENFILE on accept only. At 0.5 the spare-fd dance
  // sometimes recovers (accept retried on the freed descriptor) and
  // sometimes stays exhausted (the retry also hits the failpoint), which
  // exercises both the shed path and the accept-pause path.
  failpoints::Config cfg;
  cfg.seed = 0xacce9ULL;
  cfg.rate = 0.0;
  cfg.lethal_rate = 0.5;
  cfg.ops = failpoints::kAccept;
  failpoints::ScopedFailpoints scoped(cfg);

  ServerOptions opts;
  opts.accept_pause_ms = 20;
  ServerFixture fx(/*policy_seed=*/3, opts);

  int connected = 0;
  for (int i = 0; i < 12; ++i) {
    BlockingClient client;
    ASSERT_TRUE(client.SetCallDeadline(3000).ok());
    Status s =
        client.Connect("127.0.0.1", fx.server.port(), "burst-" + std::to_string(i));
    if (!s.ok()) continue;  // shed with kServerBusy, or paused past deadline
    uint64_t epoch = 0;
    if (client.Ping(&epoch).ok()) ++connected;
  }
  failpoints::Disable();

  const DisclosureServer::Stats stats = fx.server.stats();
  EXPECT_GT(stats.accept_overloads, 0u);
  EXPECT_GT(connected, 0);  // exhaustion degraded service, never killed it

  // With injection off the server accepts normally again.
  BlockingClient after;
  EXPECT_TRUE(after.Connect("127.0.0.1", fx.server.port(), "after").ok());
}

TEST(ServerDrainTest, ShutdownAnswersInFlightAndAnnounces) {
  ServerFixture fx;
  engine::DisclosureEngine direct(/*db=*/nullptr, &fx.fb.catalog, fx.policy);
  const auto pool = RandomWorkload(&fx.fb.schema, 2, 16, 0xd4a1ULL);

  constexpr int kClients = 3;
  constexpr int kPipelined = 48;
  std::vector<BlockingClient> clients(kClients);
  std::vector<std::vector<size_t>> orders(kClients);
  Rng rng(0xd4a2ULL);
  for (int p = 0; p < kClients; ++p) {
    const std::string principal = "drain-" + std::to_string(p);
    ASSERT_TRUE(
        clients[p].Connect("127.0.0.1", fx.server.port(), principal).ok());
    for (size_t t = 0; t < pool.size(); ++t) {
      ASSERT_TRUE(clients[p]
                      .RegisterTemplate(static_cast<uint32_t>(t),
                                        cq::ToDatalog(pool[t], fx.fb.schema))
                      .ok());
    }
    for (int i = 0; i < kPipelined; ++i) {
      orders[p].push_back(rng.Below(pool.size()));
      clients[p].QueueSubmit(static_cast<uint32_t>(orders[p].back()));
    }
    ASSERT_TRUE(clients[p].Flush().ok());
  }

  // Drain mid-load. Every staged submit must still be answered — and
  // answered with the same decisions a fault-free engine produces.
  std::thread shutdown_thread([&] { fx.server.Shutdown(); });
  for (int p = 0; p < kClients; ++p) {
    const std::string principal = "drain-" + std::to_string(p);
    for (int i = 0; i < kPipelined;) {
      ClientResponse resp;
      ASSERT_TRUE(clients[p].ReadResponse(&resp).ok())
          << "client " << p << " response " << i;
      if (resp.type == FrameType::kGoingAway) continue;
      ASSERT_EQ(resp.type, FrameType::kDecision);
      EXPECT_EQ(resp.allow, direct.Submit(principal, pool[orders[p][i]]));
      ++i;
    }
    if (!clients[p].saw_going_away()) {
      ClientResponse resp;
      ASSERT_TRUE(clients[p].ReadResponse(&resp).ok());
      EXPECT_EQ(resp.type, FrameType::kGoingAway);
    }
    EXPECT_TRUE(clients[p].saw_going_away());
    clients[p].Close();
  }
  shutdown_thread.join();

  const DisclosureServer::Stats stats = fx.server.stats();
  EXPECT_EQ(stats.decisions, static_cast<uint64_t>(kClients * kPipelined));
  EXPECT_EQ(stats.goaway_sent, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.drained_connections, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.drain_forced_closes, 0u);
}

TEST(ServerDrainTest, DeadlineForceClosesPeersThatNeverHangUp) {
  ServerOptions opts;
  opts.drain_deadline_ms = 60;
  opts.tick_interval_ms = 10;
  ServerFixture fx(/*policy_seed=*/3, opts);

  BlockingClient lingerer;
  ASSERT_TRUE(lingerer.Connect("127.0.0.1", fx.server.port(), "linger").ok());
  fx.server.Shutdown();  // peer never closes; the deadline must

  ClientResponse resp;
  ASSERT_TRUE(lingerer.ReadResponse(&resp).ok());
  EXPECT_EQ(resp.type, FrameType::kGoingAway);
  EXPECT_FALSE(lingerer.ReadResponse(&resp).ok());  // then EOF

  const DisclosureServer::Stats stats = fx.server.stats();
  EXPECT_EQ(stats.goaway_sent, 1u);
  EXPECT_EQ(stats.drain_forced_closes, 1u);
  EXPECT_EQ(stats.drained_connections, 0u);
}

TEST(ServerStatsTest, JsonCarriesTheServerFragment) {
  ServerFixture fx;
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.server.port(), "stats").ok());
  std::string json;
  ASSERT_TRUE(client.StatsJson(&json).ok());
  EXPECT_NE(json.find("\"server\""), std::string::npos);
  for (const char* key :
       {"\"handshake_reaps\"", "\"idle_reaps\"", "\"accept_overloads\"",
        "\"accept_pauses\"", "\"goaway_sent\"", "\"drained_connections\"",
        "\"drain_forced_closes\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

// --- 4. the capstone storm -----------------------------------------------

std::vector<uint64_t> StressSeeds() {
  if (const char* env = std::getenv("FDC_FAULT_SEEDS")) {
    std::vector<uint64_t> seeds;
    uint64_t value = 0;
    bool have = false;
    for (const char* p = env;; ++p) {
      if (*p >= '0' && *p <= '9') {
        value = value * 10 + static_cast<uint64_t>(*p - '0');
        have = true;
      } else if (*p == ',' || *p == '\0') {
        if (have) seeds.push_back(value);
        value = 0;
        have = false;
        if (*p == '\0') break;
      }
    }
    if (!seeds.empty()) return seeds;
  }
  return {0xf1u, 0xf2u, 0xf3u, 0xf4u, 0xf5u};
}

// One full storm under `seed`; *faults_out accumulates the injections.
// (void so the fatal ASSERT_* macros are usable inside.)
void RunStorm(uint64_t seed, uint64_t* faults_out) {
  const int fd_baseline = CountOpenFds();
  uint64_t faults = 0;
  {
    ServerOptions opts;
    opts.workers = 1;  // one worker → the schedule is a function of the seed
    ServerFixture fx(/*policy_seed=*/seed | 1, opts);
    engine::DisclosureEngine direct(/*db=*/nullptr, &fx.fb.catalog, fx.policy);
    const auto pool = RandomWorkload(&fx.fb.schema, 2, 24, seed ^ 0xbeefULL);

    // Phase (a): benign storm — EINTR/EAGAIN/short IO on every syscall
    // class, pipelined bursts. Nothing may be dropped, duplicated or
    // reordered: responses must match the twin engine decision for
    // decision, in order.
    {
      failpoints::Config cfg;
      cfg.seed = seed;
      cfg.rate = 0.65;
      cfg.lethal_rate = 0.0;
      cfg.short_io = 0.6;
      failpoints::ScopedFailpoints scoped(cfg);
      failpoints::ResetStats();

      constexpr int kClients = 3;
      constexpr int kRounds = 10;
      constexpr int kPerRound = 96;
      std::vector<BlockingClient> clients(kClients);
      for (int p = 0; p < kClients; ++p) {
        const std::string principal = "storm-" + std::to_string(p);
        ASSERT_TRUE(
            clients[p].Connect("127.0.0.1", fx.server.port(), principal).ok())
            << "seed " << seed;
        for (size_t t = 0; t < pool.size(); ++t) {
          ASSERT_TRUE(clients[p]
                          .RegisterTemplate(static_cast<uint32_t>(t),
                                            cq::ToDatalog(pool[t], fx.fb.schema))
                          .ok());
        }
      }
      Rng rng(seed ^ 0x0a0aULL);
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::vector<size_t>> orders(kClients);
        for (int p = 0; p < kClients; ++p) {
          for (int i = 0; i < kPerRound; ++i) {
            orders[p].push_back(rng.Below(pool.size()));
            clients[p].QueueSubmit(static_cast<uint32_t>(orders[p].back()));
          }
          ASSERT_TRUE(clients[p].Flush().ok());
        }
        for (int p = 0; p < kClients; ++p) {
          const std::string principal = "storm-" + std::to_string(p);
          for (int i = 0; i < kPerRound; ++i) {
            ClientResponse resp;
            ASSERT_TRUE(clients[p].ReadResponse(&resp).ok())
                << "seed " << seed << " round " << round;
            ASSERT_EQ(resp.type, FrameType::kDecision);
            ASSERT_EQ(resp.allow, direct.Submit(principal, pool[orders[p][i]]))
                << "seed " << seed << " divergence under benign storm";
          }
        }
      }
      faults += failpoints::Current().faults;
    }

    // Phase (b): lethal storm — connection-killing faults against
    // call/response clients armed with deadlines and reconnect-retry.
    // At-least-once retry of an identical query is decision- and
    // state-stable, so the twin engine fed each call once in client call
    // order must still agree exactly.
    {
      constexpr int kClients = 2;
      constexpr int kCalls = 300;
      // A reconnect replays every registered template before the failed
      // call is re-issued, and each replay roundtrip is itself exposed to
      // the storm — keep the registered set small so a reconnect has a
      // healthy chance of surviving, and let the attempt budget absorb
      // the rest.
      constexpr size_t kTemplates = 8;
      RetryOptions retry;
      retry.max_attempts = 20;
      retry.base_backoff_ms = 1;
      retry.max_backoff_ms = 20;
      retry.seed = seed;
      std::vector<BlockingClient> clients(kClients);
      uint64_t reconnects = 0;
      for (int p = 0; p < kClients; ++p) {
        const std::string principal = "lethal-" + std::to_string(p);
        clients[p].EnableRetry(retry);
        ASSERT_TRUE(clients[p].SetCallDeadline(2000).ok());
        ASSERT_TRUE(
            clients[p].Connect("127.0.0.1", fx.server.port(), principal).ok());
        for (size_t t = 0; t < kTemplates; ++t) {
          ASSERT_TRUE(clients[p]
                          .RegisterTemplate(static_cast<uint32_t>(t),
                                            cq::ToDatalog(pool[t], fx.fb.schema))
                          .ok());
        }
      }

      failpoints::Config cfg;
      cfg.seed = seed ^ 0x1e7a1ULL;
      cfg.rate = 0.4;
      cfg.lethal_rate = 0.01;
      cfg.short_io = 0.5;
      cfg.ops = failpoints::kRecv | failpoints::kSend | failpoints::kClose |
                failpoints::kEpollWait;
      failpoints::ScopedFailpoints scoped(cfg);
      failpoints::ResetStats();

      Rng rng(seed ^ 0x0b0bULL);
      for (int i = 0; i < kCalls; ++i) {
        for (int p = 0; p < kClients; ++p) {
          const std::string principal = "lethal-" + std::to_string(p);
          const size_t t = rng.Below(kTemplates);
          ClientResponse resp;
          ASSERT_TRUE(clients[p].Submit(static_cast<uint32_t>(t), &resp).ok())
              << "seed " << seed << " call " << i
              << " (retry budget exhausted)";
          ASSERT_EQ(resp.type, FrameType::kDecision);
          ASSERT_EQ(resp.allow, direct.Submit(principal, pool[t]))
              << "seed " << seed << " divergence under lethal storm";
        }
      }
      for (auto& c : clients) reconnects += c.reconnects();
      const uint64_t lethal_faults = failpoints::Current().faults;
      // The lethal phase only tests the retry path if faults fired.
      EXPECT_GT(lethal_faults, 0u) << "seed " << seed;
      faults += lethal_faults;
    }

    fx.server.Stop();
  }
  // Everything torn down: the process owns exactly the fds it started
  // with. Any slow path that dropped a descriptor fails every seed.
  EXPECT_EQ(CountOpenFds(), fd_baseline) << "fd leak under seed " << seed;
  *faults_out += faults;
}

TEST(FaultInjectionStressTest, StormsAreLeakFreeAndDecisionExact) {
  uint64_t total_faults = 0;
  for (const uint64_t seed : StressSeeds()) {
    uint64_t faults = 0;
    RunStorm(seed, &faults);
    EXPECT_GT(faults, 2000u) << "storm under seed " << seed
                             << " injected too few faults to mean anything";
    total_faults += faults;
  }
  // The acceptance floor: ≥10k injected faults across the seed matrix.
  EXPECT_GE(total_faults, 10'000u);
}

}  // namespace
}  // namespace fdc::server
