#include "cq/schema.h"

#include <gtest/gtest.h>

namespace fdc::cq {
namespace {

TEST(SchemaTest, AddAndLookup) {
  Schema schema;
  auto id = schema.AddRelation("Meetings", {"time", "person"});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0);
  const RelationDef* rel = schema.Find("Meetings");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->name, "Meetings");
  EXPECT_EQ(rel->arity(), 2);
  EXPECT_EQ(schema.FindById(0), rel);
  EXPECT_EQ(schema.NumRelations(), 1);
}

TEST(SchemaTest, AttributeIndex) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("Contacts", {"person", "email", "pos"}).ok());
  const RelationDef* rel = schema.Find("Contacts");
  EXPECT_EQ(rel->AttributeIndex("person"), 0);
  EXPECT_EQ(rel->AttributeIndex("email"), 1);
  EXPECT_EQ(rel->AttributeIndex("pos"), 2);
  EXPECT_EQ(rel->AttributeIndex("missing"), -1);
}

TEST(SchemaTest, RejectsDuplicateName) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", {"a"}).ok());
  auto dup = schema.AddRelation("R", {"b"});
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, RejectsEmptyName) {
  Schema schema;
  EXPECT_FALSE(schema.AddRelation("", {"a"}).ok());
}

TEST(SchemaTest, RejectsZeroArity) {
  Schema schema;
  EXPECT_FALSE(schema.AddRelation("R", {}).ok());
}

TEST(SchemaTest, RejectsDuplicateAttribute) {
  Schema schema;
  auto result = schema.AddRelation("R", {"a", "b", "a"});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, UnknownLookupsReturnNull) {
  Schema schema;
  EXPECT_EQ(schema.Find("nope"), nullptr);
  EXPECT_EQ(schema.FindById(-1), nullptr);
  EXPECT_EQ(schema.FindById(7), nullptr);
}

TEST(SchemaTest, IdsAreDense) {
  Schema schema;
  for (int i = 0; i < 10; ++i) {
    auto id = schema.AddRelation("R" + std::to_string(i), {"a"});
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, i);
  }
  EXPECT_EQ(schema.NumRelations(), 10);
}

}  // namespace
}  // namespace fdc::cq
