#include <gtest/gtest.h>

#include "label/generating_set.h"
#include "label/glb_labeler.h"
#include "label/label_gen.h"
#include "label/naive_labeler.h"
#include "order/disclosure_lattice.h"
#include "order/explicit_preorder.h"
#include "order/rewriting_order.h"
#include "order/universe.h"
#include "test_util.h"

namespace fdc::label {
namespace {

using order::DisclosureLattice;
using order::ExplicitPreorder;
using order::Universe;
using order::ViewSet;

// Figure 3 universe: ids 0=V1, 1=V2, 2=V4, 3=V5 (see order_lattice_test).
ExplicitPreorder Figure3Order() {
  return ExplicitPreorder({0b1111, 0b0011, 0b0101, 0b0001});
}

// ---- Theorem 3.7 / Example 3.5 ------------------------------------------

TEST(LabelerExistenceTest, Example35NoLabelerWithoutV5) {
  ExplicitPreorder order = Figure3Order();
  auto lattice = DisclosureLattice::Build(order, 4);
  ASSERT_TRUE(lattice.ok());
  // F = {∅, {V2}, {V4}, {V2,V4}, ⊤}: GLB(⇓{V2}, ⇓{V4}) = ⇓{V5} is missing,
  // so no labeler exists (Example 3.5).
  LabelFamily family = {{}, {1}, {2}, {1, 2}, {0}};
  EXPECT_FALSE(InducesLabeler(*lattice, family));
  // Adding {V5} fixes it.
  family.push_back({3});
  EXPECT_TRUE(InducesLabeler(*lattice, family));
}

TEST(LabelerExistenceTest, RequiresTop) {
  ExplicitPreorder order = Figure3Order();
  auto lattice = DisclosureLattice::Build(order, 4);
  ASSERT_TRUE(lattice.ok());
  LabelFamily family = {{}, {1}, {3}};
  EXPECT_FALSE(InducesLabeler(*lattice, family));  // no ⊤ element
}

TEST(LabelerExistenceTest, PreciseNeedsLubClosureAndBottom) {
  ExplicitPreorder order = Figure3Order();
  auto lattice = DisclosureLattice::Build(order, 4);
  ASSERT_TRUE(lattice.ok());
  // Full element family: precise.
  LabelFamily full = {{}, {3}, {1}, {2}, {1, 2}, {0}};
  EXPECT_TRUE(InducesPreciseLabeler(*lattice, full));
  // §4.2's imprecision example: F = {∅,{V5},{V2},{V4},⊤} induces a labeler
  // but not a precise one (ℓ({V2,V4}) would jump to ⊤).
  LabelFamily imprecise = {{}, {3}, {1}, {2}, {0}};
  EXPECT_TRUE(InducesLabeler(*lattice, imprecise));
  EXPECT_FALSE(InducesPreciseLabeler(*lattice, imprecise));
}

// ---- NaiveLabel -----------------------------------------------------------

TEST(NaiveLabelerTest, ReturnsLowestBoundingLabel) {
  ExplicitPreorder order = Figure3Order();
  NaiveLabeler labeler(&order, {{0}, {1}, {2}, {3}, {1, 2}, {}});
  // Label of {V5} should be {V5} itself, not anything higher.
  auto label = labeler.Label({3});
  ASSERT_TRUE(label.has_value());
  EXPECT_TRUE(order.Equivalent(*label, {3}));
  // Label of {V2,V5} is {V2}.
  label = labeler.Label({1, 3});
  ASSERT_TRUE(label.has_value());
  EXPECT_TRUE(order.Equivalent(*label, {1}));
}

TEST(NaiveLabelerTest, SortRespectsOrder) {
  ExplicitPreorder order = Figure3Order();
  NaiveLabeler labeler(&order, {{0}, {1, 2}, {1}, {2}, {3}, {}});
  const LabelFamily& sorted = labeler.sorted_family();
  for (size_t i = 0; i < sorted.size(); ++i) {
    for (size_t j = i + 1; j < sorted.size(); ++j) {
      // If sorted[j] ⪯ sorted[i] strictly, the sort is wrong.
      EXPECT_FALSE(order.Leq(sorted[j], sorted[i]) &&
                   !order.Leq(sorted[i], sorted[j]))
          << "order violated at " << i << "," << j;
    }
  }
}

TEST(NaiveLabelerTest, TopWhenNothingBounds) {
  ExplicitPreorder order = Figure3Order();
  NaiveLabeler labeler(&order, {{3}});  // only the nonemptiness view
  EXPECT_FALSE(labeler.Label({0}).has_value());
}

// ---- Labeler axioms (Definition 3.4) as properties -----------------------

TEST(LabelerAxiomsTest, NaiveLabelerSatisfiesAxioms) {
  ExplicitPreorder order = Figure3Order();
  LabelFamily family = {{}, {3}, {1}, {2}, {1, 2}, {0}};
  NaiveLabeler labeler(&order, family);

  for (uint64_t bits = 0; bits < 16; ++bits) {
    ViewSet w = order::BitsToViewSet(bits);
    auto label = labeler.Label(w);
    ASSERT_TRUE(label.has_value());
    // (c) W ⪯ ℓ(W).
    EXPECT_TRUE(order.Leq(w, *label));
    // (a) ℓ(W) ≡ some member of F.
    bool in_family = false;
    for (const ViewSet& f : family) {
      in_family |= order.Equivalent(*label, f);
    }
    EXPECT_TRUE(in_family);
  }
  // (b) fixpoints: ℓ(W) ≡ W for W ∈ F.
  for (const ViewSet& f : family) {
    auto label = labeler.Label(f);
    ASSERT_TRUE(label.has_value());
    EXPECT_TRUE(order.Equivalent(*label, f));
  }
  // (d) monotonicity.
  for (uint64_t b1 = 0; b1 < 16; ++b1) {
    for (uint64_t b2 = 0; b2 < 16; ++b2) {
      ViewSet w1 = order::BitsToViewSet(b1);
      ViewSet w2 = order::BitsToViewSet(b2);
      if (!order.Leq(w1, w2)) continue;
      auto l1 = labeler.Label(w1);
      auto l2 = labeler.Label(w2);
      ASSERT_TRUE(l1.has_value() && l2.has_value());
      EXPECT_TRUE(order.Leq(*l1, *l2));
    }
  }
}

// ---- GLBLabel over the rewriting order ------------------------------------

class GlbLabelerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = test::MakePaperSchema();
    v3_ = universe_.Add(test::P("V3(x, y, z) :- Contacts(x, y, z)", schema_));
    v6_ = universe_.Add(test::P("V6(x, y) :- Contacts(x, y, z)", schema_));
    v7_ = universe_.Add(test::P("V7(x, z) :- Contacts(x, y, z)", schema_));
    v8_ = universe_.Add(test::P("V8(y, z) :- Contacts(x, y, z)", schema_));
  }

  cq::Schema schema_;
  Universe universe_;
  int v3_, v6_, v7_, v8_;
};

TEST_F(GlbLabelerTest, Example61LabelOfV9) {
  order::RewritingOrder order(&universe_);
  GlbLabeler labeler(&order, &universe_,
                     {{v3_}, {v6_}, {v7_}, {v8_}});
  // ℓ({V9}) = GLB({V3},{V6},{V7}); ℓ+({V9}) = {V3,V6,V7} (Example 6.1).
  const int v9 = universe_.Add(test::P("V9(x) :- Contacts(x, y, z)", schema_));
  auto label = labeler.Label({v9});
  ASSERT_TRUE(label.has_value());
  // The label must be ≡ {V9}: exactly the overlap of the three views.
  EXPECT_TRUE(order.Equivalent(*label, {v9}));
}

TEST_F(GlbLabelerTest, TopWhenNoViewBounds) {
  order::RewritingOrder order(&universe_);
  GlbLabeler labeler(&order, &universe_, {{v6_}});
  // The full Contacts table is not computable from the 2-column projection.
  EXPECT_FALSE(labeler.Label({v3_}).has_value());
}

TEST_F(GlbLabelerTest, LabelGenUnionsPerView) {
  order::RewritingOrder order(&universe_);
  LabelGenLabeler labeler(&order, &universe_,
                          {{v3_}, {v6_}, {v7_}, {v8_}});
  const int v9 = universe_.Add(test::P("V9(x) :- Contacts(x, y, z)", schema_));
  const int v10 =
      universe_.Add(test::P("V10(y) :- Contacts(x, y, z)", schema_));
  auto label = labeler.Label({v9, v10});
  EXPECT_FALSE(label.top);
  EXPECT_TRUE(order.Equivalent(label.views, {v9, v10}));
}

TEST_F(GlbLabelerTest, LabelGenFlagsTop) {
  order::RewritingOrder order(&universe_);
  LabelGenLabeler labeler(&order, &universe_, {{v6_}});
  auto label = labeler.Label({v3_});
  EXPECT_TRUE(label.top);
}

// ---- Theorem 4.3 / 4.5: generating sets -----------------------------------

TEST_F(GlbLabelerTest, Example44MinimalDownwardGeneratingSet) {
  order::RewritingOrder order(&universe_);
  // F's interesting fragment: the projection views of Figure 4. V9..V12 are
  // GLBs of {V6,V7,V8}, so the minimal downward generating set keeps only
  // {V3, V6, V7, V8} singletons.
  const int v9 = universe_.Add(test::P("V9(x) :- Contacts(x, y, z)", schema_));
  const int v10 =
      universe_.Add(test::P("V10(y) :- Contacts(x, y, z)", schema_));
  const int v11 =
      universe_.Add(test::P("V11(z) :- Contacts(x, y, z)", schema_));
  const int v12 =
      universe_.Add(test::P("V12() :- Contacts(x, y, z)", schema_));
  LabelFamily family = {{v3_}, {v6_}, {v7_}, {v8_},
                        {v9},  {v10}, {v11}, {v12}};
  LabelFamily minimal =
      MinimalDownwardGeneratingSet(order, &universe_, family);
  ASSERT_EQ(minimal.size(), 4u);
  EXPECT_EQ(minimal[0], ViewSet{v3_});
  EXPECT_EQ(minimal[1], ViewSet{v6_});
  EXPECT_EQ(minimal[2], ViewSet{v7_});
  EXPECT_EQ(minimal[3], ViewSet{v8_});
}

TEST_F(GlbLabelerTest, CloseUnderGlbRecoversDroppedElements) {
  order::RewritingOrder order(&universe_);
  LabelFamily generated =
      CloseUnderGlb(order, &universe_, {{v3_}, {v6_}, {v7_}, {v8_}});
  // Closure adds the lower projections (V9–V12 up to ≡), reaching 8 classes.
  EXPECT_EQ(generated.size(), 8u);
  // Every original element survives.
  for (int v : {v3_, v6_, v7_, v8_}) {
    bool found = false;
    for (const ViewSet& w : generated) {
      found |= order.Equivalent(w, {v});
    }
    EXPECT_TRUE(found);
  }
  // Closure is idempotent.
  EXPECT_EQ(CloseUnderGlb(order, &universe_, generated).size(),
            generated.size());
}

// ---- Cross-validation: GLBLabel agrees with NaiveLabel ---------------------

TEST_F(GlbLabelerTest, GlbLabelMatchesNaiveLabelOnClosedFamily) {
  order::RewritingOrder order(&universe_);
  LabelFamily family =
      CloseUnderGlb(order, &universe_, {{v3_}, {v6_}, {v7_}, {v8_}});
  NaiveLabeler naive(&order, family);
  GlbLabeler fast(&order, &universe_, {{v3_}, {v6_}, {v7_}, {v8_}});

  for (int v = 0; v < universe_.size(); ++v) {
    auto naive_label = naive.Label({v});
    auto fast_label = fast.Label({v});
    ASSERT_EQ(naive_label.has_value(), fast_label.has_value()) << v;
    if (naive_label.has_value()) {
      EXPECT_TRUE(order.Equivalent(*naive_label, *fast_label))
          << "view " << universe_.Get(v).Key();
    }
  }
}

}  // namespace
}  // namespace fdc::label
