#include "label/pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "workload/query_generator.h"
#include "test_util.h"

namespace fdc::label {
namespace {

using cq::Schema;

// ---- Figure 1: labels of Q1 and Q2 ---------------------------------------

class Figure1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = test::MakePaperSchema();
    catalog_ = std::make_unique<ViewCatalog>(&schema_);
    // Security views of Figure 1(b).
    ASSERT_TRUE(
        catalog_->AddViewText("V1", "V1(x, y) :- Meetings(x, y)").ok());
    ASSERT_TRUE(catalog_->AddViewText("V2", "V2(x) :- Meetings(x, y)").ok());
    ASSERT_TRUE(
        catalog_->AddViewText("V3", "V3(x, y, z) :- Contacts(x, y, z)").ok());
  }

  std::vector<std::string> NamesOf(const SetLabel& label) {
    std::vector<std::string> names;
    for (const auto& per_atom : label.per_atom) {
      for (int id : per_atom) names.push_back(catalog_->view(id).name);
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
  }

  Schema schema_;
  std::unique_ptr<ViewCatalog> catalog_;
};

TEST_F(Figure1Test, LabelOfQ1IsV1) {
  // Q1 selects meetings with Cathy: needs the full Meetings view, not V2.
  LabelerPipeline pipeline(catalog_.get());
  auto q1 = test::Q("Q1(x) :- Meetings(x, 'Cathy')", schema_);
  SetLabel label = pipeline.LabelHashed(q1);
  EXPECT_FALSE(label.top);
  EXPECT_EQ(NamesOf(label), (std::vector<std::string>{"V1"}));
}

TEST_F(Figure1Test, LabelOfQ2IsV1AndV3) {
  LabelerPipeline pipeline(catalog_.get());
  auto q2 = test::Q("Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
                    schema_);
  SetLabel label = pipeline.LabelHashed(q2);
  EXPECT_FALSE(label.top);
  EXPECT_EQ(NamesOf(label), (std::vector<std::string>{"V1", "V3"}));
}

TEST_F(Figure1Test, TimeOnlyQueryLabeledV2AndV1) {
  // π_time is answerable from V2 *and* from V1; ℓ+ records both.
  LabelerPipeline pipeline(catalog_.get());
  auto q = test::Q("Q(x) :- Meetings(x, y)", schema_);
  SetLabel label = pipeline.LabelHashed(q);
  EXPECT_EQ(NamesOf(label), (std::vector<std::string>{"V1", "V2"}));
}

TEST_F(Figure1Test, UncoveredQueryIsTop) {
  LabelerPipeline pipeline(catalog_.get());
  // Select the person column only: V2 can't answer, V1 can — so not top.
  auto by_person = test::Q("Q(y) :- Meetings(x, y)", schema_);
  EXPECT_FALSE(pipeline.LabelHashed(by_person).top);
  // A catalog without V1/V3 makes Contacts queries top.
  ViewCatalog small(&schema_);
  ASSERT_TRUE(small.AddViewText("V2", "V2(x) :- Meetings(x, y)").ok());
  LabelerPipeline small_pipeline(&small);
  auto q = test::Q("Q(x) :- Contacts(x, y, z)", schema_);
  EXPECT_TRUE(small_pipeline.LabelHashed(q).top);
}

// ---- The three variants agree on the Facebook workload --------------------

class PipelineAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineAgreementTest, AllVariantsComputeTheSameLabel) {
  cq::Schema schema = fb::BuildFacebookSchema();
  ViewCatalog catalog(&schema);
  ASSERT_TRUE(fb::RegisterFacebookViews(&catalog).ok());
  LabelerPipeline pipeline(&catalog);

  workload::GeneratorOptions options;
  options.subqueries = 3;
  workload::QueryGenerator generator(&schema, options, GetParam());

  for (int i = 0; i < 60; ++i) {
    cq::ConjunctiveQuery q = generator.Next();
    SetLabel baseline = pipeline.LabelBaseline(q);
    SetLabel hashed = pipeline.LabelHashed(q);
    DisclosureLabel packed = pipeline.LabelPacked(q);
    WideLabel wide = pipeline.LabelWide(q);

    // Baseline and hashed produce identical id sets.
    EXPECT_EQ(baseline.per_atom, hashed.per_atom);
    EXPECT_EQ(baseline.top, hashed.top);
    EXPECT_EQ(hashed.top, packed.top());
    EXPECT_EQ(packed.top(), wide.top());

    // Packed masks encode exactly the hashed id sets.
    std::multiset<std::pair<uint32_t, uint32_t>> from_sets;
    for (size_t a = 0; a < hashed.per_atom.size(); ++a) {
      if (hashed.per_atom[a].empty()) continue;  // top atom, not stored
      const uint32_t relation = static_cast<uint32_t>(
          catalog.view(*hashed.per_atom[a].begin()).relation);
      uint32_t mask = 0;
      for (int id : hashed.per_atom[a]) {
        mask |= (1u << catalog.view(id).bit);
      }
      from_sets.insert({relation, mask});
    }
    std::multiset<std::pair<uint32_t, uint32_t>> from_packed;
    for (const PackedAtomLabel& atom : packed.atoms()) {
      from_packed.insert({atom.relation(), atom.mask()});
    }
    // Seal() dedupes; dedupe the set view as well.
    std::set<std::pair<uint32_t, uint32_t>> lhs(from_sets.begin(),
                                                from_sets.end());
    std::set<std::pair<uint32_t, uint32_t>> rhs(from_packed.begin(),
                                                from_packed.end());
    EXPECT_EQ(lhs, rhs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineAgreementTest,
                         ::testing::Values(101, 202, 303));

// ---- Folding ablation ------------------------------------------------------

TEST(PipelineAblationTest, NoFoldLabelsAreSoundButWider) {
  cq::Schema schema = test::MakePaperSchema();
  ViewCatalog catalog(&schema);
  ASSERT_TRUE(catalog.AddViewText("V1", "V1(x, y) :- Meetings(x, y)").ok());
  ASSERT_TRUE(
      catalog.AddViewText("V3", "V3(x, y, z) :- Contacts(x, y, z)").ok());

  DissectOptions no_fold;
  no_fold.fold = false;
  LabelerPipeline with_fold(&catalog);
  LabelerPipeline without_fold(&catalog, no_fold);

  // Redundant-join query: with folding it needs only V1; without folding
  // the Contacts atom also enters the label.
  auto q = test::Q(
      "Q(x) :- Meetings(x, y), Meetings(x, z), Contacts(p, q, r)",
      schema);
  // Contacts atom is disconnected & boolean — folding keeps it (it is not
  // implied by Meetings atoms), but the duplicate Meetings atom goes away.
  DisclosureLabel folded = with_fold.LabelPacked(q);
  DisclosureLabel unfolded = without_fold.LabelPacked(q);
  EXPECT_LE(folded.size(), unfolded.size());
  // Both must bound the query: folded ⪯ unfolded (less or equal info).
  EXPECT_TRUE(folded.Leq(unfolded));
}

}  // namespace
}  // namespace fdc::label
