#include "cq/interned.h"

#include "cq/canonical.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fdc::cq {
namespace {

class InternerTest : public ::testing::Test {
 protected:
  Schema schema_ = test::MakePaperSchema();
  QueryInterner interner_;
};

TEST_F(InternerTest, RenamedQueriesShareOneHandle) {
  const ConjunctiveQuery a =
      test::Q("Q(x) :- Meetings(x, y), Contacts(y, e, p)", schema_);
  const ConjunctiveQuery b =
      test::Q("Q(u) :- Contacts(v, w, z), Meetings(u, v)", schema_);
  const InternedQuery& ia = interner_.Intern(a);
  const InternedQuery& ib = interner_.Intern(b);
  EXPECT_EQ(ia.id(), ib.id());
  EXPECT_EQ(&ia, &ib);
  EXPECT_EQ(interner_.num_queries(), 1);
  EXPECT_EQ(interner_.stats().query_hits, 1u);
  EXPECT_EQ(interner_.stats().query_misses, 1u);
}

TEST_F(InternerTest, DistinctStructuresGetDistinctIds) {
  const InternedQuery& scan =
      interner_.Intern(test::Q("Q(x) :- Meetings(x, y)", schema_));
  const InternedQuery& sel =
      interner_.Intern(test::Q("Q(x) :- Meetings(x, 'Cathy')", schema_));
  const InternedQuery& diag =
      interner_.Intern(test::Q("Q(x) :- Meetings(x, x)", schema_));
  EXPECT_NE(scan.id(), sel.id());
  EXPECT_NE(scan.id(), diag.id());
  EXPECT_NE(sel.id(), diag.id());
}

TEST_F(InternerTest, DigestRecordsStructure) {
  const ConjunctiveQuery q =
      test::Q("Q(x) :- Meetings(x, y), Contacts(y, e, 'vp')", schema_);
  const InternedQuery& interned = interner_.Intern(q);
  const QueryDigest& digest = interned.digest();
  EXPECT_EQ(digest.num_atoms, 2);
  EXPECT_EQ(digest.head_arity, 1);
  EXPECT_GE(digest.max_var, 0);
  const int meetings = schema_.Find("Meetings")->id;
  const int contacts = schema_.Find("Contacts")->id;
  EXPECT_NE(digest.relation_set & (1ULL << (meetings & 63)), 0u);
  EXPECT_NE(digest.relation_set & (1ULL << (contacts & 63)), 0u);
  ASSERT_EQ(interned.atom_signatures().size(), 2u);
}

TEST_F(InternerTest, DigestIsInvariantUnderRenamingAndReordering) {
  const ConjunctiveQuery a =
      test::Q("Q(x) :- Meetings(x, y), Contacts(y, e, p)", schema_);
  const ConjunctiveQuery b =
      test::Q("Q(a) :- Contacts(b, c, d), Meetings(a, b)", schema_);
  const QueryDigest da = ComputeQueryDigest(Canonicalize(a));
  const QueryDigest db = ComputeQueryDigest(Canonicalize(b));
  EXPECT_EQ(da.predicate_multiset_hash, db.predicate_multiset_hash);
  EXPECT_EQ(da.relation_set, db.relation_set);
}

TEST_F(InternerTest, PredicateMultisetHashCountsMultiplicity) {
  const QueryDigest one = ComputeQueryDigest(
      test::Q("Q(x) :- Meetings(x, y)", schema_));
  const QueryDigest two = ComputeQueryDigest(
      test::Q("Q(x) :- Meetings(x, y), Meetings(x, z)", schema_));
  EXPECT_NE(one.predicate_multiset_hash, two.predicate_multiset_hash);
}

TEST_F(InternerTest, AtomSignatureTracksConstants) {
  const ConjunctiveQuery q =
      test::Q("Q(x) :- Contacts(x, 'e', 'vp')", schema_);
  const AtomSignature sig = ComputeAtomSignature(q.atoms().front());
  EXPECT_EQ(sig.arity, 3);
  EXPECT_EQ(sig.const_positions, 0b110u);

  const AtomSignature loose = ComputeAtomSignature(
      test::Q("Q(x) :- Contacts(x, y, z)", schema_).atoms().front());
  // A constant-free atom can map onto anything of the same relation; the
  // constrained atom cannot map onto the constant-free one.
  EXPECT_TRUE(loose.CompatibleWith(sig));
  EXPECT_FALSE(sig.CompatibleWith(loose));
}

TEST_F(InternerTest, HomomorphismDigestRejectIsSound) {
  const QueryDigest join = ComputeQueryDigest(
      test::Q("Q(x) :- Meetings(x, y), Contacts(y, e, p)", schema_));
  const QueryDigest scan =
      ComputeQueryDigest(test::Q("Q(x) :- Meetings(x, y)", schema_));
  // Mapping the join into the scan needs a Contacts image: reject.
  EXPECT_FALSE(MayHaveHomomorphismInto(join, scan));
  // The scan can map into the join.
  EXPECT_TRUE(MayHaveHomomorphismInto(scan, join));
}

TEST_F(InternerTest, CanonicalFormHitsTheRawTable) {
  // Intern under a deliberately non-canonical variable naming, then probe
  // with the canonical form: the intern step must have raw-registered the
  // canonical object too, so the probe resolves at level 1 (raw_hits) with
  // no CanonicalKey recomputation. This is what lets a serving front end
  // canonicalize a registered template once and hash-probe per submit.
  const ConjunctiveQuery raw =
      test::Q("Q(u) :- Contacts(v, w, z), Meetings(u, v)", schema_);
  const InternedQuery& interned = interner_.Intern(raw);
  const ConjunctiveQuery canonical = Canonicalize(raw);
  EXPECT_EQ(interner_.stats().raw_hits, 0u);
  const InternedQuery* via_canonical = interner_.TryIntern(canonical, 1);
  ASSERT_NE(via_canonical, nullptr);
  EXPECT_EQ(via_canonical, &interned);
  EXPECT_EQ(interner_.stats().raw_hits, 1u);
  EXPECT_EQ(interner_.num_queries(), 1);
  // Find (the lock-free frozen-tier probe) resolves both forms.
  EXPECT_EQ(interner_.Find(raw), &interned);
  EXPECT_EQ(interner_.Find(canonical), &interned);
}

TEST_F(InternerTest, PatternInterningDeduplicates) {
  const AtomPattern a = test::P("V(x) :- Meetings(x, y)", schema_);
  const AtomPattern b = test::P("W(u) :- Meetings(u, v)", schema_);
  const AtomPattern c = test::P("V(x, y) :- Meetings(x, y)", schema_);
  const int ia = interner_.InternPattern(a);
  const int ib = interner_.InternPattern(b);
  const int ic = interner_.InternPattern(c);
  EXPECT_EQ(ia, ib);
  EXPECT_NE(ia, ic);
  EXPECT_EQ(interner_.num_patterns(), 2);
  EXPECT_EQ(interner_.pattern(ia), a);
}

}  // namespace
}  // namespace fdc::cq
