// Property suite for the compiled catalog matcher and the hom-scratch
// arena (PR 3's two hot-path kernels):
//
//   * the CompiledCatalogMatcher must be mask-for-mask identical to the
//     seed per-view kernels — the raw AtomRewritable loop and the
//     cache-backed ComputePatternMask — over randomized schemas, catalogs,
//     and patterns (same oracle style as hom_index_property_test.cc), and
//     LabelingPipeline must produce identical whole-query labels with the
//     matcher enabled and ablated;
//   * the ≥32-views-per-relation OutOfRange guard must yield defined,
//     agreeing (and strictly-higher-label) masks in every kernel instead of
//     the seed's undefined shift;
//   * a warm HomScratch must make existence-only homomorphism searches and
//     containment checks genuinely allocation-free (counted via a global
//     operator new override).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cq/interned.h"
#include "cq/pattern.h"
#include "cq/schema.h"
#include "label/compiled_matcher.h"
#include "label/pipeline.h"
#include "label/view_catalog.h"
#include "rewriting/atom_rewriting.h"
#include "rewriting/containment.h"
#include "rewriting/containment_cache.h"
#include "rewriting/homomorphism.h"

// ---------------------------------------------------------------------------
// Allocation counting: every operator new in this binary bumps the counter
// when armed. Used to prove the warm-scratch paths allocate nothing.
// ---------------------------------------------------------------------------
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fdc::label {
namespace {

using cq::Atom;
using cq::AtomPattern;
using cq::ConjunctiveQuery;
using cq::Term;

constexpr int kMaxArity = 5;
const char* const kConstPool[3] = {"a", "b", "c"};

// A random schema with `num_relations` relations of arity 1..kMaxArity.
cq::Schema RandomSchema(Rng* rng, int num_relations,
                        std::vector<int>* arities) {
  cq::Schema schema;
  for (int r = 0; r < num_relations; ++r) {
    const int arity = static_cast<int>(rng->Range(1, kMaxArity));
    std::vector<std::string> cols;
    for (int c = 0; c < arity; ++c) cols.push_back("c" + std::to_string(c));
    (void)schema.AddRelation("R" + std::to_string(r), cols);
    arities->push_back(arity);
  }
  return schema;
}

// A random single-atom pattern over relation `r`: constants, repeated
// variables, and a random distinguished set. Normalized via FromAtom.
AtomPattern RandomPattern(Rng* rng, int relation, int arity) {
  std::vector<Term> terms;
  const int num_vars = 1 + static_cast<int>(rng->Below(arity));
  for (int p = 0; p < arity; ++p) {
    if (rng->Chance(0.3)) {
      terms.push_back(Term::Const(kConstPool[rng->Below(3)]));
    } else {
      terms.push_back(Term::Var(static_cast<int>(rng->Below(num_vars))));
    }
  }
  std::vector<bool> distinguished(num_vars, false);
  for (int v = 0; v < num_vars; ++v) distinguished[v] = rng->Chance(0.5);
  return AtomPattern::FromAtom(Atom(relation, std::move(terms)),
                               distinguished);
}

// Registers `num_views` random views (deduplicating patterns the catalog
// would accept twice under different names — duplicates are legal but make
// the masks trivially equal, so keep some variety).
void RandomCatalog(Rng* rng, ViewCatalog* catalog,
                   const std::vector<int>& arities, int num_views) {
  for (int k = 0; k < num_views; ++k) {
    const int relation = static_cast<int>(rng->Below(arities.size()));
    const AtomPattern pattern =
        RandomPattern(rng, relation, arities[relation]);
    (void)catalog->AddView("v" + std::to_string(k), pattern.ToQuery("V"));
  }
}

// The seed-of-seeds: a raw AtomRewritable loop with the packed 32-view
// guard, against which both production kernels are compared.
uint32_t OracleMask(const ViewCatalog& catalog, const AtomPattern& pattern) {
  uint32_t mask = 0;
  for (int view_id : catalog.ViewsOfRelation(pattern.relation)) {
    const SecurityView& view = catalog.view(view_id);
    if (view.bit < 32 &&
        rewriting::AtomRewritable(pattern, view.pattern)) {
      mask |= uint32_t{1} << view.bit;
    }
  }
  return mask;
}

TEST(CompiledMatcherTest, MatchesSeedKernelsOnRandomCatalogs) {
  Rng rng(0xc0de'0001);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<int> arities;
    const int num_relations = 1 + static_cast<int>(rng.Below(4));
    cq::Schema schema = RandomSchema(&rng, num_relations, &arities);
    ViewCatalog catalog(&schema);
    RandomCatalog(&rng, &catalog, arities,
                  2 + static_cast<int>(rng.Below(20)));
    const CompiledCatalogMatcher matcher =
        CompiledCatalogMatcher::Compile(catalog);
    cq::QueryInterner interner;
    rewriting::ContainmentCache cache;
    for (int i = 0; i < 40; ++i) {
      const int relation = static_cast<int>(rng.Below(arities.size()));
      const AtomPattern pattern =
          RandomPattern(&rng, relation, arities[relation]);
      const uint32_t oracle = OracleMask(catalog, pattern);
      EXPECT_EQ(matcher.MatchMask(pattern), oracle)
          << "compiled net disagrees with per-view loop, trial " << trial
          << " pattern " << pattern.Key();
      const int pattern_id = interner.InternPattern(pattern);
      EXPECT_EQ(ComputePatternMask(catalog, interner, cache, pattern_id,
                                   pattern)
                    .mask(),
                oracle)
          << "cached seed kernel disagrees, trial " << trial;
    }
  }
}

TEST(CompiledMatcherTest, PipelineLabelsIdenticalWithAndWithoutMatcher) {
  Rng rng(0xc0de'0002);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> arities;
    cq::Schema schema = RandomSchema(&rng, 3, &arities);
    ViewCatalog catalog(&schema);
    RandomCatalog(&rng, &catalog, arities, 12);
    LabelingPipeline compiled(&catalog);
    LabelingOptions ablated_options;
    ablated_options.ablate_compiled_matcher = true;
    LabelingPipeline ablated(&catalog, nullptr, nullptr, {},
                             ablated_options);
    ASSERT_NE(compiled.matcher(), nullptr);
    ASSERT_EQ(ablated.matcher(), nullptr);
    for (int i = 0; i < 40; ++i) {
      // Random multi-atom queries (1-3 atoms, shared variables) so folding
      // and dissection run too.
      const int natoms = 1 + static_cast<int>(rng.Below(3));
      std::vector<Atom> atoms;
      std::vector<bool> used(4, false);
      for (int a = 0; a < natoms; ++a) {
        const int relation = static_cast<int>(rng.Below(arities.size()));
        std::vector<Term> terms;
        for (int p = 0; p < arities[relation]; ++p) {
          if (rng.Chance(0.25)) {
            terms.push_back(Term::Const(kConstPool[rng.Below(3)]));
          } else {
            const int v = static_cast<int>(rng.Below(4));
            used[v] = true;
            terms.push_back(Term::Var(v));
          }
        }
        atoms.emplace_back(relation, std::move(terms));
      }
      std::vector<Term> head;
      for (int v = 0; v < 4; ++v) {
        if (used[v] && rng.Chance(0.4)) head.push_back(Term::Var(v));
      }
      const ConjunctiveQuery query("Q", std::move(head), std::move(atoms));
      EXPECT_EQ(compiled.Label(query), ablated.Label(query))
          << "trial " << trial << " query " << i;
    }
    EXPECT_GT(compiled.stats().compiled_mask_evals, 0u);
    EXPECT_EQ(ablated.stats().compiled_mask_evals, 0u);
  }
}

TEST(CompiledMatcherTest, Beyond32ViewsPerRelationIsDefinedAndStricter) {
  cq::Schema schema;
  (void)schema.AddRelation("R", {"x", "y"});
  ViewCatalog catalog(&schema);
  // Bit 0: the full scan (every pattern's ℓ+ contains it). Bits 1..39:
  // constant-selecting views; bits ≥ 32 cannot live in a packed mask.
  ASSERT_TRUE(catalog.AddViewText("full", "V(x, y) :- R(x, y)").ok());
  for (int k = 1; k <= 39; ++k) {
    ASSERT_TRUE(catalog
                    .AddViewText("sel" + std::to_string(k),
                                 "V(x) :- R(x, 'k" + std::to_string(k) + "')")
                    .ok());
  }
  ASSERT_GT(catalog.MaxViewsPerRelation(), 32);
  const CompiledCatalogMatcher matcher =
      CompiledCatalogMatcher::Compile(catalog);
  cq::QueryInterner interner;
  rewriting::ContainmentCache cache;

  auto masks_for = [&](const std::string& constant) {
    AtomPattern pattern = AtomPattern::FromAtom(
        Atom(0, {Term::Var(0), Term::Const(constant)}), {true});
    const uint32_t compiled = matcher.MatchMask(pattern);
    const uint32_t seed =
        ComputePatternMask(catalog, interner, cache,
                           interner.InternPattern(pattern), pattern)
            .mask();
    EXPECT_EQ(compiled, seed) << "kernels disagree for '" << constant << "'";
    EXPECT_EQ(compiled, OracleMask(catalog, pattern));
    return compiled;
  };

  // A view representable in the packed mask: ℓ+ = {full, sel5}.
  EXPECT_EQ(masks_for("k5"), (uint32_t{1} << 0) | (uint32_t{1} << 5));
  // sel35 holds bit 35 — excluded from the packed mask, so ℓ+ shrinks to
  // {full}: a strictly higher (stricter) label, never a looser one, and no
  // undefined shift anywhere.
  EXPECT_EQ(masks_for("k35"), uint32_t{1} << 0);
}

TEST(CompiledMatcherTest, WarmScratchSearchesAreAllocationFree) {
  // Chain queries force a real (multi-candidate) backtracking search.
  std::vector<Atom> from_atoms;
  std::vector<Atom> to_atoms;
  for (int i = 0; i < 5; ++i) {
    from_atoms.emplace_back(
        0, std::vector<Term>{Term::Var(i), Term::Var(i + 1)});
    to_atoms.emplace_back(
        0, std::vector<Term>{Term::Var(10 + i), Term::Var(11 + i)});
  }
  const ConjunctiveQuery from("F", {}, from_atoms);
  const ConjunctiveQuery to("T", {}, to_atoms);

  rewriting::HomScratch scratch;
  rewriting::HomOptions options;
  options.scratch = &scratch;
  // Warm: first search sizes every buffer.
  ASSERT_TRUE(rewriting::ExistsHomomorphism(from, to, options));
  ASSERT_GT(scratch.uses, 0u);

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rewriting::ExistsHomomorphism(from, to, options));
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "warm ExistsHomomorphism must not allocate";

  // Containment with head alignment through the same arena: warm once,
  // then steady-state IsContainedIn is allocation-free too.
  const ConjunctiveQuery q1(
      "Q", {Term::Var(0)},
      {Atom(0, {Term::Var(0), Term::Const("a")}),
       Atom(0, {Term::Var(0), Term::Var(1)})});
  const ConjunctiveQuery q2("Q", {Term::Var(0)},
                            {Atom(0, {Term::Var(0), Term::Var(1)})});
  ASSERT_TRUE(rewriting::IsContainedIn(q1, q2, &scratch));

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rewriting::IsContainedIn(q1, q2, &scratch));
    ASSERT_FALSE(rewriting::IsContainedIn(q2, q1, &scratch));
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "warm IsContainedIn must not allocate";
}

TEST(CompiledMatcherTest, MatcherEvaluationIsAllocationFree) {
  Rng rng(0xc0de'0003);
  std::vector<int> arities;
  cq::Schema schema = RandomSchema(&rng, 2, &arities);
  ViewCatalog catalog(&schema);
  RandomCatalog(&rng, &catalog, arities, 16);
  const CompiledCatalogMatcher matcher =
      CompiledCatalogMatcher::Compile(catalog);
  std::vector<AtomPattern> patterns;
  for (int i = 0; i < 16; ++i) {
    const int relation = static_cast<int>(rng.Below(arities.size()));
    patterns.push_back(RandomPattern(&rng, relation, arities[relation]));
  }
  std::vector<uint32_t> expected;
  for (const AtomPattern& pattern : patterns) {
    expected.push_back(matcher.MatchMask(pattern));
  }
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int rep = 0; rep < 20; ++rep) {
    for (size_t i = 0; i < patterns.size(); ++i) {
      ASSERT_EQ(matcher.MatchMask(patterns[i]), expected[i]);
    }
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u) << "MatchMask must not allocate";
}

}  // namespace
}  // namespace fdc::label
