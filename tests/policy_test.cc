#include "policy/policy.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "label/pipeline.h"
#include "order/explicit_preorder.h"
#include "policy/overprivilege.h"
#include "policy/policy_analysis.h"
#include "policy/reference_monitor.h"
#include "test_util.h"

namespace fdc::policy {
namespace {

using cq::Schema;
using label::DisclosureLabel;
using label::LabelerPipeline;
using label::PackedAtomLabel;
using label::ViewCatalog;

// Catalog for the Example 6.2 scenario: Fgen singletons over Meetings and
// Contacts.
class Example62Test : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = test::MakePaperSchema();
    catalog_ = std::make_unique<ViewCatalog>(&schema_);
    auto add = [&](const std::string& name, const std::string& text) {
      auto id = catalog_->AddViewText(name, text);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ids_[name] = *id;
    };
    add("V1", "V1(x, y) :- Meetings(x, y)");
    add("V2", "V2(x) :- Meetings(x, y)");
    add("V3", "V3(x, y, z) :- Contacts(x, y, z)");
    add("V6", "V6(x, y) :- Contacts(x, y, z)");
    add("V7", "V7(x, z) :- Contacts(x, y, z)");
    pipeline_ = std::make_unique<LabelerPipeline>(catalog_.get());

    // Policy {W1, W2}: W1 = {V1} (Meetings), W2 = {V3} (Contacts).
    auto policy = SecurityPolicy::Compile(
        *catalog_,
        {{"W1", {ids_["V1"]}}, {"W2", {ids_["V3"]}}});
    ASSERT_TRUE(policy.ok());
    policy_ = std::make_unique<SecurityPolicy>(std::move(policy).value());
  }

  DisclosureLabel Label(const std::string& text) {
    return pipeline_->LabelPacked(test::Q(text, schema_));
  }

  Schema schema_;
  std::unique_ptr<ViewCatalog> catalog_;
  std::unique_ptr<LabelerPipeline> pipeline_;
  std::unique_ptr<SecurityPolicy> policy_;
  std::map<std::string, int> ids_;
};

// Example 6.2/6.3: V6 accepted, then V7 accepted, then V2 refused; the
// consistency bit vector evolves ⟨1,1⟩ → ⟨1,0⟩ → ⟨1,0⟩ → refuse.
TEST_F(Example62Test, ChineseWallTrace) {
  ReferenceMonitor monitor(policy_.get());
  PrincipalState state = monitor.InitialState();
  EXPECT_EQ(state.consistent, 0b11u);

  EXPECT_TRUE(monitor.Submit(&state, Label("V6(x, y) :- Contacts(x, y, z)")));
  EXPECT_EQ(state.consistent, 0b10u);  // only W2 (= partition 1) consistent

  EXPECT_TRUE(monitor.Submit(&state, Label("V7(x, z) :- Contacts(x, y, z)")));
  EXPECT_EQ(state.consistent, 0b10u);  // unchanged

  // V2 (Meetings projection) now violates both partitions cumulatively.
  EXPECT_FALSE(monitor.Submit(&state, Label("V2(x) :- Meetings(x, y)")));
  EXPECT_EQ(state.consistent, 0b10u);  // refused queries leave state alone
}

TEST_F(Example62Test, OppositeOrderLocksOtherPartition) {
  ReferenceMonitor monitor(policy_.get());
  PrincipalState state = monitor.InitialState();
  EXPECT_TRUE(monitor.Submit(&state, Label("V2(x) :- Meetings(x, y)")));
  EXPECT_EQ(state.consistent, 0b01u);
  EXPECT_FALSE(
      monitor.Submit(&state, Label("V6(x, y) :- Contacts(x, y, z)")));
}

TEST_F(Example62Test, StatelessEquivalenceForSinglePartition) {
  // §6.2: with one partition, the stateful monitor accepts exactly the
  // queries the stateless check accepts, in any order.
  auto policy = SecurityPolicy::Compile(*catalog_, {{"W", {ids_["V1"]}}});
  ASSERT_TRUE(policy.ok());
  ReferenceMonitor monitor(&*policy);
  PrincipalState state = monitor.InitialState();
  const std::vector<std::string> queries = {
      "Q(x) :- Meetings(x, y)", "Q(y) :- Meetings(x, y)",
      "Q(x) :- Meetings(x, 'Cathy')", "Q(x, y) :- Meetings(x, y)"};
  for (const std::string& text : queries) {
    DisclosureLabel label = Label(text);
    EXPECT_EQ(monitor.CheckStateless(label),
              monitor.Submit(&state, label))
        << text;
  }
}

TEST_F(Example62Test, TopLabelAlwaysRefused) {
  ReferenceMonitor monitor(policy_.get());
  PrincipalState state = monitor.InitialState();
  DisclosureLabel top;
  top.MarkTop();
  EXPECT_FALSE(monitor.Submit(&state, top));
  EXPECT_FALSE(monitor.CheckStateless(top));
}

TEST_F(Example62Test, MonitorInvariantHoldsOnRandomStreams) {
  // Property: after any accepted prefix, at least one partition bounds the
  // union of all accepted labels (the §6.2 invariant).
  ReferenceMonitor monitor(policy_.get());
  Rng rng(31337);
  const std::vector<std::string> pool = {
      "Q(x) :- Meetings(x, y)",      "Q(y) :- Meetings(x, y)",
      "Q(x, y) :- Meetings(x, y)",   "Q(x) :- Contacts(x, y, z)",
      "Q(x, y) :- Contacts(x, y, z)", "Q(z) :- Contacts(x, y, z)",
      "Q(x, y, z) :- Contacts(x, y, z)",
  };
  for (int run = 0; run < 20; ++run) {
    PrincipalState state = monitor.InitialState();
    DisclosureLabel accepted_union;
    for (int step = 0; step < 12; ++step) {
      DisclosureLabel label = Label(pool[rng.Below(pool.size())]);
      if (monitor.Submit(&state, label)) {
        accepted_union.UnionWith(label);
        bool some_partition_bounds = false;
        for (int p = 0; p < policy_->num_partitions(); ++p) {
          some_partition_bounds |= policy_->LabelAllowed(p, accepted_union);
        }
        EXPECT_TRUE(some_partition_bounds);
      }
    }
  }
}

// ---- Compilation validation ------------------------------------------------

TEST_F(Example62Test, CompileRejectsBadInput) {
  EXPECT_FALSE(SecurityPolicy::Compile(*catalog_, {}).ok());
  EXPECT_FALSE(
      SecurityPolicy::Compile(*catalog_, {{"W", {999}}}).ok());
  // 33 partitions fit since the state word widened to 64 bits; one past
  // kMaxPartitions must fail with a clear OutOfRange error.
  std::vector<Partition> wide(33, Partition{"W", {0}});
  EXPECT_TRUE(SecurityPolicy::Compile(*catalog_, wide).ok());
  std::vector<Partition> too_many(SecurityPolicy::kMaxPartitions + 1,
                                  Partition{"W", {0}});
  auto overflow = SecurityPolicy::Compile(*catalog_, too_many);
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kOutOfRange);
}

TEST_F(Example62Test, PartitionMasksReflectBits) {
  const int meetings = schema_.Find("Meetings")->id;
  const int contacts = schema_.Find("Contacts")->id;
  // W1 = {V1}: bit 0 of Meetings (first view registered for that relation).
  EXPECT_EQ(policy_->PartitionMask(0, meetings), 0b01u);
  EXPECT_EQ(policy_->PartitionMask(0, contacts), 0u);
  EXPECT_EQ(policy_->PartitionMask(1, contacts), 0b001u);
}

// Regression: an out-of-range partition index from a public API must
// degrade to "allows nothing" (stricter-never-looser), never index
// partition_words_ out of bounds (UB). Mirrors the PR 4 wrap-safe relation
// guards one argument over.
TEST_F(Example62Test, OutOfRangePartitionIndexIsGuarded) {
  const uint32_t meetings =
      static_cast<uint32_t>(schema_.Find("Meetings")->id);
  const int k = policy_->num_partitions();
  for (const int p : {-1, -1000, k, k + 1, 1 << 20}) {
    EXPECT_FALSE(policy_->ValidPartition(p)) << p;
    EXPECT_EQ(policy_->PartitionMask(p, meetings), 0u) << p;
    EXPECT_EQ(policy_->PartitionWords(p, meetings), nullptr) << p;

    label::WideAtomLabel wide;
    wide.relation = static_cast<int>(meetings);
    wide.mask = {~0ULL};
    EXPECT_FALSE(policy_->WideAtomAllowed(p, wide)) << p;

    label::DisclosureLabel label;
    label.Add(label::PackedAtomLabel(meetings, 0b01));
    label.Seal();
    EXPECT_FALSE(policy_->LabelAllowed(p, label)) << p;
    // The empty label is the subtle case: with only per-atom guards the
    // atom loops would be vacuous and an out-of-range p would "allow" it.
    label::DisclosureLabel empty;
    EXPECT_FALSE(policy_->LabelAllowed(p, empty)) << p;
  }
  // In-range indices still answer (sanity that the guard is not too wide).
  EXPECT_TRUE(policy_->ValidPartition(0));
  EXPECT_TRUE(policy_->ValidPartition(k - 1));
  EXPECT_EQ(policy_->PartitionMask(0, meetings), 0b01u);
  ASSERT_NE(policy_->PartitionWords(0, meetings), nullptr);
}

// ---- Policy analysis --------------------------------------------------------

TEST_F(Example62Test, FindViewRedundancies) {
  auto redundancies = FindViewRedundancies(*catalog_);
  // V2 ⪯ V1, V6 ⪯ V3, V7 ⪯ V3 at least; no equivalent pairs.
  bool v2_below_v1 = false;
  for (const auto& r : redundancies) {
    EXPECT_FALSE(r.equivalent);
    if (r.lower_view == ids_["V2"] && r.upper_view == ids_["V1"]) {
      v2_below_v1 = true;
    }
  }
  EXPECT_TRUE(v2_below_v1);
}

TEST_F(Example62Test, EquivalentViewsDetected) {
  ViewCatalog catalog(&schema_);
  ASSERT_TRUE(catalog.AddViewText("A", "A(x, y) :- Meetings(x, y)").ok());
  ASSERT_TRUE(catalog.AddViewText("B", "B(y, x) :- Meetings(x, y)").ok());
  auto redundancies = FindViewRedundancies(catalog);
  ASSERT_EQ(redundancies.size(), 1u);
  EXPECT_TRUE(redundancies[0].equivalent);
}

TEST_F(Example62Test, RedundantPartitionsDetected) {
  auto policy = SecurityPolicy::Compile(
      *catalog_, {{"Big", {ids_["V1"], ids_["V3"]}},
                  {"Small", {ids_["V1"]}},
                  {"Other", {ids_["V2"]}}});
  ASSERT_TRUE(policy.ok());
  std::vector<int> redundant = FindRedundantPartitions(*policy);
  // "Small" (1) is dominated by "Big" (0); "Other" uses a different view
  // bit so it stays.
  EXPECT_EQ(redundant, (std::vector<int>{1}));
}

TEST(PolicyConsistencyTest, DownwardClosureAndCheck) {
  order::ExplicitPreorder order({0b1111, 0b0011, 0b0101, 0b0001});
  auto lattice = order::DisclosureLattice::Build(order, 4);
  ASSERT_TRUE(lattice.ok());
  // Policy = {⇓{V2}} alone is not downward closed (⊥ and ⇓{V5} missing).
  std::vector<int> policy = {lattice->IndexOfDownSet({1})};
  EXPECT_FALSE(CheckInternallyConsistent(*lattice, policy).ok());
  std::vector<int> closed = DownwardClosure(*lattice, policy);
  EXPECT_TRUE(CheckInternallyConsistent(*lattice, closed).ok());
  EXPECT_EQ(closed.size(), 3u);  // ⊥, ⇓{V5}, ⇓{V2}
}

// ---- Overprivilege -----------------------------------------------------------

TEST_F(Example62Test, OverprivilegeDetection) {
  // App requests V1, V3, V7 but only ever reads Meetings times (V2-shaped
  // queries, answerable from V1): V3 and V7 are unused.
  std::vector<cq::ConjunctiveQuery> workload = {
      test::Q("Q(x) :- Meetings(x, y)", schema_),
      test::Q("Q(x) :- Meetings(x, 'Cathy')", schema_),
  };
  OverprivilegeReport report = AnalyzeOverprivilege(
      *catalog_, {ids_["V1"], ids_["V3"], ids_["V7"]}, workload);
  EXPECT_TRUE(report.overprivileged());
  EXPECT_EQ(report.unused_views,
            (std::vector<int>{ids_["V3"], ids_["V7"]}));
  EXPECT_EQ(report.minimal_sufficient, (std::vector<int>{ids_["V1"]}));
  EXPECT_EQ(report.unanswerable_atoms, 0);
}

TEST_F(Example62Test, UnderprivilegeCounted) {
  // App requests only V2 but asks for Contacts data.
  std::vector<cq::ConjunctiveQuery> workload = {
      test::Q("Q(x) :- Contacts(x, y, z)", schema_),
  };
  OverprivilegeReport report =
      AnalyzeOverprivilege(*catalog_, {ids_["V2"]}, workload);
  EXPECT_EQ(report.unanswerable_atoms, 1);
  EXPECT_EQ(report.unused_views, (std::vector<int>{ids_["V2"]}));
}

TEST_F(Example62Test, MinimalCoverPrefersSharedView) {
  // Queries over both relations; requesting {V1, V3} is exactly minimal.
  std::vector<cq::ConjunctiveQuery> workload = {
      test::Q("Q(x) :- Meetings(x, y)", schema_),
      test::Q("Q(x) :- Contacts(x, y, z)", schema_),
  };
  OverprivilegeReport report = AnalyzeOverprivilege(
      *catalog_, {ids_["V1"], ids_["V2"], ids_["V3"]}, workload);
  // V2 can also answer the first query, but the greedy cover needs at most
  // two views and never both V1 and V2.
  EXPECT_LE(report.minimal_sufficient.size(), 2u);
  EXPECT_EQ(report.unanswerable_atoms, 0);
}

}  // namespace
}  // namespace fdc::policy
