#include <gtest/gtest.h>

#include "cq/query.h"
#include "test_util.h"

namespace fdc::cq {
namespace {

TEST(TermTest, VarAndConstBasics) {
  Term v = Term::Var(3);
  Term c = Term::Const("Cathy");
  EXPECT_TRUE(v.is_var());
  EXPECT_FALSE(v.is_const());
  EXPECT_EQ(v.var(), 3);
  EXPECT_TRUE(c.is_const());
  EXPECT_EQ(c.value(), "Cathy");
  EXPECT_NE(v, c);
  EXPECT_EQ(v, Term::Var(3));
  EXPECT_NE(v, Term::Var(4));
  EXPECT_EQ(c, Term::Const("Cathy"));
  EXPECT_NE(c, Term::Const("Bob"));
}

TEST(TermTest, OrderingVariablesBeforeConstants) {
  EXPECT_LT(Term::Var(0), Term::Var(1));
  EXPECT_LT(Term::Var(5), Term::Const("a"));
  EXPECT_LT(Term::Const("a"), Term::Const("b"));
}

TEST(QueryTest, DistinguishedVarsFromHead) {
  cq::Schema schema = test::MakePaperSchema();
  ConjunctiveQuery q = test::Q("Q(x, y) :- Meetings(x, y)", schema);
  EXPECT_TRUE(q.IsDistinguished(0));
  EXPECT_TRUE(q.IsDistinguished(1));
  EXPECT_EQ(q.DistinguishedVars(), (std::vector<int>{0, 1}));

  ConjunctiveQuery q2 = test::Q("Q(x) :- Meetings(x, y)", schema);
  EXPECT_TRUE(q2.IsDistinguished(0));
  EXPECT_FALSE(q2.IsDistinguished(1));
}

TEST(QueryTest, BooleanQuery) {
  cq::Schema schema = test::MakePaperSchema();
  ConjunctiveQuery q = test::Q("V5() :- Meetings(x, y)", schema);
  EXPECT_TRUE(q.IsBoolean());
  EXPECT_TRUE(q.DistinguishedVars().empty());
  EXPECT_EQ(q.MaxVarId(), 1);
}

TEST(QueryTest, AtomCountPerVar) {
  cq::Schema schema = test::MakePaperSchema();
  // y joins the two atoms; x and w are single-atom variables.
  ConjunctiveQuery q =
      test::Q("Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')", schema);
  std::vector<int> counts = q.AtomCountPerVar();
  // Variables by first occurrence: x=0, y=1, w=2.
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
}

TEST(QueryTest, AtomCountCountsEachAtomOnce) {
  cq::Schema schema = test::MakePaperSchema();
  ConjunctiveQuery q = test::Q("Q(x) :- Meetings(x, x)", schema);
  EXPECT_EQ(q.AtomCountPerVar()[0], 1);  // twice in one atom = one atom
}

TEST(QueryTest, ValidateRejectsUnsafeHead) {
  cq::Schema schema = test::MakePaperSchema();
  ConjunctiveQuery q(
      "Q", {Term::Var(5)},
      {Atom(schema.Find("Meetings")->id, {Term::Var(0), Term::Var(1)})});
  EXPECT_FALSE(q.Validate(schema).ok());
}

TEST(QueryTest, ValidateRejectsArityMismatch) {
  cq::Schema schema = test::MakePaperSchema();
  ConjunctiveQuery q("Q", {},
                     {Atom(schema.Find("Meetings")->id, {Term::Var(0)})});
  EXPECT_FALSE(q.Validate(schema).ok());
}

TEST(QueryTest, ValidateRejectsUnknownRelation) {
  cq::Schema schema = test::MakePaperSchema();
  ConjunctiveQuery q("Q", {}, {Atom(99, {Term::Var(0)})});
  EXPECT_FALSE(q.Validate(schema).ok());
}

TEST(QueryTest, WithPromotedVars) {
  cq::Schema schema = test::MakePaperSchema();
  ConjunctiveQuery q = test::Q("Q(x) :- Meetings(x, y)", schema);
  ConjunctiveQuery promoted = q.WithPromotedVars({1});
  EXPECT_TRUE(promoted.IsDistinguished(1));
  EXPECT_EQ(promoted.head().size(), 2u);
  // Promoting an already-distinguished variable is a no-op.
  ConjunctiveQuery again = promoted.WithPromotedVars({0, 1});
  EXPECT_EQ(again.head().size(), 2u);
}

TEST(QueryTest, WithAtomSubset) {
  cq::Schema schema = test::MakePaperSchema();
  ConjunctiveQuery q =
      test::Q("Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')", schema);
  ConjunctiveQuery sub = q.WithAtomSubset({0});
  EXPECT_EQ(sub.size(), 1);
  EXPECT_EQ(sub.atoms()[0].relation, schema.Find("Meetings")->id);
}

TEST(QueryTest, SubstituteRenamesVariables) {
  cq::Schema schema = test::MakePaperSchema();
  ConjunctiveQuery q = test::Q("Q(x) :- Meetings(x, y)", schema);
  std::vector<Term> mapping = {Term::Var(10), Term::Const("9")};
  ConjunctiveQuery s = q.Substitute(mapping);
  EXPECT_EQ(s.head()[0], Term::Var(10));
  EXPECT_EQ(s.atoms()[0].terms[0], Term::Var(10));
  EXPECT_EQ(s.atoms()[0].terms[1], Term::Const("9"));
}

TEST(QueryTest, EqualityIsStructural) {
  cq::Schema schema = test::MakePaperSchema();
  ConjunctiveQuery a = test::Q("Q(x) :- Meetings(x, y)", schema);
  ConjunctiveQuery b = test::Q("R(x) :- Meetings(x, y)", schema);
  EXPECT_EQ(a, b);  // names are not part of identity
  ConjunctiveQuery c = test::Q("Q(y) :- Meetings(x, y)", schema);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace fdc::cq
