#include "cq/printer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fdc::cq {
namespace {

class PrinterTest : public ::testing::Test {
 protected:
  Schema schema_ = test::MakePaperSchema();
};

TEST_F(PrinterTest, DatalogRendering) {
  auto q = test::Q("Q1(x) :- Meetings(x, 'Cathy')", schema_);
  EXPECT_EQ(ToDatalog(q, schema_), "Q1(v0) :- Meetings(v0, 'Cathy')");
}

TEST_F(PrinterTest, BooleanHeadRendering) {
  auto q = test::Q("V5() :- Meetings(x, y)", schema_);
  EXPECT_EQ(ToDatalog(q, schema_), "V5() :- Meetings(v0, v1)");
}

TEST_F(PrinterTest, MultiAtomRendering) {
  auto q = test::Q("Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
                   schema_);
  EXPECT_EQ(ToDatalog(q, schema_),
            "Q2(v0) :- Meetings(v0, v1), Contacts(v1, v2, 'Intern')");
}

TEST_F(PrinterTest, UnnamedQueryGetsDefaultName) {
  ConjunctiveQuery q("", {Term::Var(0)},
                     {Atom(0, {Term::Var(0), Term::Var(1)})});
  EXPECT_EQ(ToDatalog(q, schema_), "Q(v0) :- Meetings(v0, v1)");
}

TEST_F(PrinterTest, UnknownRelationFallsBackToId) {
  ConjunctiveQuery q("Q", {}, {Atom(42, {Term::Var(0)})});
  EXPECT_EQ(ToDatalog(q, schema_), "Q() :- R42(v0)");
}

TEST_F(PrinterTest, TaggedBodyMarksQuantification) {
  auto q = test::Q("Q(x) :- Meetings(x, y)", schema_);
  EXPECT_EQ(ToTaggedBody(q, schema_), "[Meetings(v0_d, v1_e)]");
}

TEST_F(PrinterTest, TaggedBodyExample54Form) {
  // The §5 representation of Q2 from Figure 1.
  auto q = test::Q("Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
                   schema_);
  EXPECT_EQ(ToTaggedBody(q, schema_),
            "[Meetings(v0_d, v1_e), Contacts(v1_e, v2_e, 'Intern')]");
}

TEST_F(PrinterTest, PatternRendering) {
  AtomPattern p = test::P("V(x) :- Meetings(x, x)", schema_);
  EXPECT_EQ(PatternToString(p, schema_), "Meetings(x0_d, x0_d)");
}

TEST_F(PrinterTest, DatalogRoundTripsAllFigureViews) {
  for (const char* text : {
           "V1(x, y) :- Meetings(x, y)",
           "V2(x) :- Meetings(x, y)",
           "V3(x, y, z) :- Contacts(x, y, z)",
           "V5() :- Meetings(x, y)",
           "V13() :- Meetings(9, 'Jim')",
           "V15() :- Meetings(z, z)",
       }) {
    auto q = test::Q(text, schema_);
    auto reparsed = ParseDatalog(ToDatalog(q, schema_), schema_);
    ASSERT_TRUE(reparsed.ok()) << text;
    EXPECT_EQ(q, *reparsed) << text;
  }
}

}  // namespace
}  // namespace fdc::cq
