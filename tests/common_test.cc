#include <gtest/gtest.h>

#include <set>

#include "common/bit_utils.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_utils.h"

namespace fdc {
namespace {

// ---- Status / Result ------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::PolicyViolation("x").code(), StatusCode::kPolicyViolation);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok_result(42);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);
  EXPECT_EQ(ok_result.value_or(7), 42);

  Result<int> err_result(Status::NotFound("gone"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err_result.value_or(7), 7);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> r(std::string("payload"));
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

// ---- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(9);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    uint64_t v = rng.Range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Chance(0.3);
  EXPECT_GT(hits, n * 0.25);
  EXPECT_LT(hits, n * 0.35);
}

// ---- Bit utils ---------------------------------------------------------------

TEST(BitUtilsTest, PopCount) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(0b1011), 3);
  EXPECT_EQ(PopCount(~0ULL), 64);
}

TEST(BitUtilsTest, Subset) {
  EXPECT_TRUE(IsBitSubset(0b0101, 0b1101));
  EXPECT_FALSE(IsBitSubset(0b0011, 0b0101));
  EXPECT_TRUE(IsBitSubset(0, 0));
}

TEST(BitUtilsTest, ForEachBitVisitsAll) {
  std::set<int> bits;
  ForEachBit(0b100101ULL, [&](int b) { bits.insert(b); });
  EXPECT_EQ(bits, (std::set<int>{0, 2, 5}));
}

TEST(BitUtilsTest, LowMask) {
  EXPECT_EQ(LowMask(0), 0ULL);
  EXPECT_EQ(LowMask(3), 0b111ULL);
  EXPECT_EQ(LowMask(64), ~0ULL);
}

// ---- String utils ---------------------------------------------------------------

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(TrimView("  abc  "), "abc");
  EXPECT_EQ(TrimView(""), "");
  EXPECT_EQ(TrimView("   "), "");
  EXPECT_EQ(TrimView("x"), "x");
}

TEST(StringUtilsTest, CaseInsensitiveCompare) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("SeLeCt", "sElEcT"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "SELEC"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(JoinStrings({}, ", "), "");
  EXPECT_EQ(JoinStrings({"a"}, ", "), "a");
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, " or "), "a or b or c");
}

TEST(StringUtilsTest, IdentPredicates) {
  EXPECT_TRUE(IsIdentStart('a'));
  EXPECT_TRUE(IsIdentStart('_'));
  EXPECT_FALSE(IsIdentStart('1'));
  EXPECT_TRUE(IsIdentChar('1'));
  EXPECT_FALSE(IsIdentChar('-'));
}

}  // namespace
}  // namespace fdc
