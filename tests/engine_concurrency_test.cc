// Concurrency suite for the DisclosureEngine — designed to run clean under
// ThreadSanitizer (the CI tsan job runs exactly these tests).
//
//   * Stress: N threads × M principals with randomized interleavings; each
//     principal's decision sequence must be identical to a single-threaded
//     replay of the same per-principal query stream (per-principal state is
//     independent, so cross-principal interleaving must not matter).
//   * Epoch swap: concurrent policy updates must be atomic — every batch
//     decision vector matches one policy wholly; a half-updated policy
//     would produce a mixed vector.
#include "engine/disclosure_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/principal_map.h"

#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "test_util.h"
#include "workload/policy_generator.h"
#include "workload/query_generator.h"

namespace fdc::engine {
namespace {

using test::FbFixture;
using test::RandomWorkload;

// N threads drive M principals each (disjoint principal sets, shared
// engine); the per-principal decision sequences must equal a fresh
// single-threaded replay.
TEST(EngineConcurrencyTest, StressMatchesSingleThreadedReplay) {
  FbFixture fb;
  constexpr int kThreads = 8;
  constexpr int kPrincipalsPerThread = 4;
  constexpr int kQueriesPerPrincipal = 120;

  policy::SecurityPolicy policy =
      workload::PolicyGenerator(&fb.catalog, {}, 0xabba01ULL).Next();

  // Per-principal query streams, drawn from a shared pool so labeling
  // contends on the same structures across threads.
  const auto pool = RandomWorkload(&fb.schema, 2, 512, 0x1234'5678ULL);
  const int total_principals = kThreads * kPrincipalsPerThread;
  std::vector<std::vector<int>> streams(total_principals);
  {
    Rng rng(0x5eedULL);
    for (auto& stream : streams) {
      stream.reserve(kQueriesPerPrincipal);
      for (int i = 0; i < kQueriesPerPrincipal; ++i) {
        stream.push_back(static_cast<int>(rng.Below(pool.size())));
      }
    }
  }
  auto name_of = [](int p) { return "principal-" + std::to_string(p); };

  DisclosureEngine engine(/*db=*/nullptr, &fb.catalog, policy);
  std::vector<std::vector<bool>> decisions(total_principals);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Randomized interleaving: each thread round-robins its principals
      // with a thread-specific skew, alternating Submit and SubmitBatch.
      Rng rng(0x77ULL * (t + 1));
      std::vector<int> cursor(kPrincipalsPerThread, 0);
      int remaining = kPrincipalsPerThread * kQueriesPerPrincipal;
      while (remaining > 0) {
        const int local = static_cast<int>(rng.Below(kPrincipalsPerThread));
        const int p = t * kPrincipalsPerThread + local;
        int& at = cursor[local];
        if (at >= kQueriesPerPrincipal) continue;
        if (rng.Chance(0.3)) {
          const int span = std::min(
              static_cast<int>(rng.Below(8)) + 1, kQueriesPerPrincipal - at);
          std::vector<cq::ConjunctiveQuery> batch;
          batch.reserve(span);
          for (int i = 0; i < span; ++i) {
            batch.push_back(pool[streams[p][at + i]]);
          }
          const std::vector<bool> out = engine.SubmitBatch(
              name_of(p), std::span(batch.data(), batch.size()));
          decisions[p].insert(decisions[p].end(), out.begin(), out.end());
          at += span;
          remaining -= span;
        } else {
          decisions[p].push_back(
              engine.Submit(name_of(p), pool[streams[p][at]]));
          ++at;
          --remaining;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Single-threaded replay on a fresh engine.
  DisclosureEngine replay(/*db=*/nullptr, &fb.catalog, policy);
  for (int p = 0; p < total_principals; ++p) {
    ASSERT_EQ(decisions[p].size(), static_cast<size_t>(kQueriesPerPrincipal));
    for (int i = 0; i < kQueriesPerPrincipal; ++i) {
      const bool expected = replay.Submit(name_of(p), pool[streams[p][i]]);
      ASSERT_EQ(decisions[p][i], expected)
          << "principal " << p << " diverged at query " << i;
    }
    EXPECT_EQ(engine.ConsistentPartitions(name_of(p)),
              replay.ConsistentPartitions(name_of(p)));
  }

  const DisclosureEngine::EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(total_principals) * kQueriesPerPrincipal);
  EXPECT_EQ(stats.num_principals, static_cast<size_t>(total_principals));
  EXPECT_EQ(stats.submitted, stats.accepted + stats.refused);
}

// Concurrent reads during concurrent policy swaps: every SubmitBatch on a
// fresh principal must match policy A's expected decisions or policy B's —
// never a mix, which is what a torn (half-updated) policy would produce.
TEST(EngineConcurrencyTest, EpochSwapIsAtomicUnderConcurrency) {
  cq::Schema schema = test::MakePaperSchema();
  label::ViewCatalog catalog(&schema);
  (void)catalog.AddViewText("meetings_full", "V(x, y) :- Meetings(x, y)");
  (void)catalog.AddViewText("contacts_full",
                            "V(x, y, z) :- Contacts(x, y, z)");
  const int meetings = catalog.FindByName("meetings_full")->id;
  const int contacts = catalog.FindByName("contacts_full")->id;
  auto policy_a =
      policy::SecurityPolicy::Compile(catalog, {{"m", {meetings}}});
  auto policy_b =
      policy::SecurityPolicy::Compile(catalog, {{"c", {contacts}}});
  ASSERT_TRUE(policy_a.ok());
  ASSERT_TRUE(policy_b.ok());

  const std::vector<cq::ConjunctiveQuery> probe = {
      test::Q("Q(x) :- Meetings(x, y)", schema),
      test::Q("Q(x) :- Contacts(x, e, p)", schema),
      test::Q("Q(x) :- Meetings(x, y)", schema),
  };
  // Expected whole-batch decisions under each policy (fresh principal):
  // A (meetings only): accept, refuse, accept. B: refuse, accept, refuse.
  const std::vector<bool> expect_a = {true, false, true};
  const std::vector<bool> expect_b = {false, true, false};

  DisclosureEngine engine(/*db=*/nullptr, &catalog, *policy_a);
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread swapper([&] {
    for (int i = 0; i < 400; ++i) {
      engine.UpdatePolicy((i % 2) == 0 ? *policy_b : *policy_a);
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      int serial = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Fresh principal per batch: decisions depend only on the policy
        // the batch's snapshot captured.
        const std::string name =
            "probe-" + std::to_string(t) + "-" + std::to_string(serial++);
        const std::vector<bool> out =
            engine.SubmitBatch(name, std::span(probe.data(), probe.size()));
        if (out != expect_a && out != expect_b) torn.fetch_add(1);
      }
    });
  }
  swapper.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(torn.load(), 0) << "a batch observed a half-updated policy";
  EXPECT_EQ(engine.Snapshot()->epoch(), 401u);
}

// Regression (found in review): per-principal slots must never move
// backwards across epochs. A caller holding a stale (older-epoch) snapshot
// is refused — it must reload and retry — instead of resetting the slot,
// which would erase the newer epoch's accumulated narrowing and let the
// next new-epoch request restart from the full mask.
TEST(EngineConcurrencyTest, PrincipalSlotsNeverRegressAcrossEpochs) {
  PrincipalStateMap map(4);
  auto narrow = [](uint64_t to) {
    return [to](policy::PrincipalState& state) {
      state.consistent = to;
      return true;
    };
  };
  ASSERT_TRUE(map.TryWithState("p", 1, 0b11, narrow(0b01)).has_value());
  // Epoch 2 advances the slot and resets it to the new init mask first.
  auto advanced =
      map.TryWithState("p", 2, 0b111, [](policy::PrincipalState& state) {
        EXPECT_EQ(state.consistent, 0b111u);
        state.consistent = 0b100;
        return true;
      });
  ASSERT_TRUE(advanced.has_value());
  // A stale epoch-1 caller is refused and must not touch the slot.
  EXPECT_FALSE(map.TryWithState("p", 1, 0b11, narrow(0b01)).has_value());
  EXPECT_FALSE(map.Consistent("p", 1, 0b11).has_value());
  // The epoch-2 narrowing survived the stale access.
  const std::optional<uint64_t> consistent = map.Consistent("p", 2, 0b111);
  ASSERT_TRUE(consistent.has_value());
  EXPECT_EQ(*consistent, 0b100u);
  // And a later epoch restarts from its own init mask.
  const std::optional<uint64_t> later = map.Consistent("p", 3, 0b1111);
  ASSERT_TRUE(later.has_value());
  EXPECT_EQ(*later, 0b1111u);
}

// Lifecycle stress (PR 5): submits racing principal sweeps AND epoch swaps
// on a capacity+TTL-bounded map. Run under TSan by CI. Evictions, residual
// rehydration, residual drops and floor-epoch refusals all interleave with
// the submit path here; the invariants checked are the ones that survive
// arbitrary interleaving — decision counters add up, the live-slot bound
// holds, and every principal stays answerable afterwards.
TEST(EngineConcurrencyTest, SubmitsRaceSweepsAndEpochSwaps) {
  FbFixture fb;
  policy::SecurityPolicy policy_a =
      workload::PolicyGenerator(&fb.catalog, {}, 0xabba01ULL).Next();
  policy::SecurityPolicy policy_b =
      workload::PolicyGenerator(&fb.catalog, {}, 0xabba02ULL).Next();
  const auto pool = RandomWorkload(&fb.schema, 2, 128, 0xfeedULL);

  EngineOptions options;
  options.principals.shards = 4;
  options.principals.max_principals = 8;
  options.principals.idle_ttl_ticks = 1;
  options.principal_sweep_interval = 16;  // auto-sweeps from submit threads
  DisclosureEngine engine(/*db=*/nullptr, &fb.catalog, policy_a, options);

  constexpr int kThreads = 4;
  constexpr int kSubmitsPerThread = 400;
  constexpr int kPrincipals = 24;  // 3x the live capacity: constant churn
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x1CEULL * (t + 1));
      for (int i = 0; i < kSubmitsPerThread; ++i) {
        const std::string principal =
            "p" + std::to_string(rng.Below(kPrincipals));
        if (rng.Chance(0.2)) {
          std::vector<cq::ConjunctiveQuery> batch;
          for (int j = 0; j < 4; ++j) {
            batch.push_back(pool[rng.Below(pool.size())]);
          }
          (void)engine.SubmitBatch(principal,
                                   std::span(batch.data(), batch.size()));
          i += 3;
        } else {
          (void)engine.Submit(principal, pool[rng.Below(pool.size())]);
        }
      }
    });
  }
  std::thread maintainer([&] {
    for (int i = 0; i < 60; ++i) {
      engine.UpdatePolicy((i % 2) == 0 ? policy_b : policy_a);
      (void)engine.SweepPrincipals();
      (void)engine.Stats();
      (void)engine.ConsistentPartitions("p0");
    }
  });
  for (std::thread& thread : threads) thread.join();
  maintainer.join();

  const DisclosureEngine::EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.submitted, stats.accepted + stats.refused);
  EXPECT_GE(stats.submitted,
            static_cast<uint64_t>(kThreads) * kSubmitsPerThread);
  EXPECT_LE(stats.num_principals, 8u);
  EXPECT_GT(stats.principal_map.evictions, 0u);
  // Quiesced: every principal is answerable under the final epoch.
  for (int p = 0; p < kPrincipals; ++p) {
    (void)engine.ConsistentPartitions("p" + std::to_string(p));
  }
}

// Concurrent submits on the SAME principal must serialize through the
// shard lock: the outcome must be *some* valid serialization. §6.2
// narrowing makes that checkable exactly: the final consistency bits must
// equal the AND of the allowed-partition masks of precisely the accepted
// labels, every accepted label's allowed mask must cover the final state,
// and every refused label's allowed mask must be disjoint from it (refusal
// happened at a superset of the final state, and AllowedPartitions is
// monotone in its candidate set).
TEST(EngineConcurrencyTest, SamePrincipalSubmitsAreAValidSerialization) {
  FbFixture fb;
  policy::SecurityPolicy policy =
      workload::PolicyGenerator(&fb.catalog, {}, 3ULL).Next();
  DisclosureEngine engine(/*db=*/nullptr, &fb.catalog, policy);
  const auto pool = RandomWorkload(&fb.schema, 1, 16, 0x42ULL);

  constexpr int kThreads = 8;
  constexpr int kSubmits = 200;
  std::vector<std::vector<bool>> decisions(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      decisions[t].reserve(kSubmits);
      for (int i = 0; i < kSubmits; ++i) {
        decisions[t].push_back(
            engine.Submit("hot-principal", pool[i % pool.size()]));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  label::LabelingPipeline seed(&fb.catalog);
  std::vector<uint64_t> allowed_full(pool.size());
  for (size_t q = 0; q < pool.size(); ++q) {
    allowed_full[q] = policy.AllowedPartitions(seed.Label(pool[q]),
                                               policy.AllPartitionsMask());
  }
  const uint64_t final_state = engine.ConsistentPartitions("hot-principal");
  uint64_t expected_final = policy.AllPartitionsMask();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kSubmits; ++i) {
      const uint64_t mask = allowed_full[i % pool.size()];
      if (decisions[t][i]) {
        expected_final &= mask;
        EXPECT_EQ(final_state & mask, final_state)
            << "accepted label does not cover the final state";
      } else {
        EXPECT_EQ(final_state & mask, 0u)
            << "refused label intersects the final state";
      }
    }
  }
  EXPECT_EQ(final_state, expected_final);
}

}  // namespace
}  // namespace fdc::engine
