// Concurrency suite for the DisclosureEngine — designed to run clean under
// ThreadSanitizer (the CI tsan job runs exactly these tests).
//
//   * Stress: N threads × M principals with randomized interleavings; each
//     principal's decision sequence must be identical to a single-threaded
//     replay of the same per-principal query stream (per-principal state is
//     independent, so cross-principal interleaving must not matter).
//   * Epoch swap: concurrent policy updates must be atomic — every batch
//     decision vector matches one policy wholly; a half-updated policy
//     would produce a mixed vector.
#include "engine/disclosure_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "common/locks.h"
#include "engine/principal_map.h"

#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "test_util.h"
#include "workload/policy_generator.h"
#include "workload/query_generator.h"

namespace fdc::engine {
namespace {

using test::FbFixture;
using test::RandomWorkload;

// N threads drive M principals each (disjoint principal sets, shared
// engine); the per-principal decision sequences must equal a fresh
// single-threaded replay.
TEST(EngineConcurrencyTest, StressMatchesSingleThreadedReplay) {
  FbFixture fb;
  constexpr int kThreads = 8;
  constexpr int kPrincipalsPerThread = 4;
  constexpr int kQueriesPerPrincipal = 120;

  policy::SecurityPolicy policy =
      workload::PolicyGenerator(&fb.catalog, {}, 0xabba01ULL).Next();

  // Per-principal query streams, drawn from a shared pool so labeling
  // contends on the same structures across threads.
  const auto pool = RandomWorkload(&fb.schema, 2, 512, 0x1234'5678ULL);
  const int total_principals = kThreads * kPrincipalsPerThread;
  std::vector<std::vector<int>> streams(total_principals);
  {
    Rng rng(0x5eedULL);
    for (auto& stream : streams) {
      stream.reserve(kQueriesPerPrincipal);
      for (int i = 0; i < kQueriesPerPrincipal; ++i) {
        stream.push_back(static_cast<int>(rng.Below(pool.size())));
      }
    }
  }
  auto name_of = [](int p) { return "principal-" + std::to_string(p); };

  DisclosureEngine engine(/*db=*/nullptr, &fb.catalog, policy);
  std::vector<std::vector<bool>> decisions(total_principals);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Randomized interleaving: each thread round-robins its principals
      // with a thread-specific skew, alternating Submit and SubmitBatch.
      Rng rng(0x77ULL * (t + 1));
      std::vector<int> cursor(kPrincipalsPerThread, 0);
      int remaining = kPrincipalsPerThread * kQueriesPerPrincipal;
      while (remaining > 0) {
        const int local = static_cast<int>(rng.Below(kPrincipalsPerThread));
        const int p = t * kPrincipalsPerThread + local;
        int& at = cursor[local];
        if (at >= kQueriesPerPrincipal) continue;
        if (rng.Chance(0.3)) {
          const int span = std::min(
              static_cast<int>(rng.Below(8)) + 1, kQueriesPerPrincipal - at);
          std::vector<cq::ConjunctiveQuery> batch;
          batch.reserve(span);
          for (int i = 0; i < span; ++i) {
            batch.push_back(pool[streams[p][at + i]]);
          }
          const std::vector<bool> out = engine.SubmitBatch(
              name_of(p), std::span(batch.data(), batch.size()));
          decisions[p].insert(decisions[p].end(), out.begin(), out.end());
          at += span;
          remaining -= span;
        } else {
          decisions[p].push_back(
              engine.Submit(name_of(p), pool[streams[p][at]]));
          ++at;
          --remaining;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Single-threaded replay on a fresh engine.
  DisclosureEngine replay(/*db=*/nullptr, &fb.catalog, policy);
  for (int p = 0; p < total_principals; ++p) {
    ASSERT_EQ(decisions[p].size(), static_cast<size_t>(kQueriesPerPrincipal));
    for (int i = 0; i < kQueriesPerPrincipal; ++i) {
      const bool expected = replay.Submit(name_of(p), pool[streams[p][i]]);
      ASSERT_EQ(decisions[p][i], expected)
          << "principal " << p << " diverged at query " << i;
    }
    EXPECT_EQ(engine.ConsistentPartitions(name_of(p)),
              replay.ConsistentPartitions(name_of(p)));
  }

  const DisclosureEngine::EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(total_principals) * kQueriesPerPrincipal);
  EXPECT_EQ(stats.num_principals, static_cast<size_t>(total_principals));
  EXPECT_EQ(stats.submitted, stats.accepted + stats.refused);
}

// Concurrent reads during concurrent policy swaps: every SubmitBatch on a
// fresh principal must match policy A's expected decisions or policy B's —
// never a mix, which is what a torn (half-updated) policy would produce.
TEST(EngineConcurrencyTest, EpochSwapIsAtomicUnderConcurrency) {
  cq::Schema schema = test::MakePaperSchema();
  label::ViewCatalog catalog(&schema);
  (void)catalog.AddViewText("meetings_full", "V(x, y) :- Meetings(x, y)");
  (void)catalog.AddViewText("contacts_full",
                            "V(x, y, z) :- Contacts(x, y, z)");
  const int meetings = catalog.FindByName("meetings_full")->id;
  const int contacts = catalog.FindByName("contacts_full")->id;
  auto policy_a =
      policy::SecurityPolicy::Compile(catalog, {{"m", {meetings}}});
  auto policy_b =
      policy::SecurityPolicy::Compile(catalog, {{"c", {contacts}}});
  ASSERT_TRUE(policy_a.ok());
  ASSERT_TRUE(policy_b.ok());

  const std::vector<cq::ConjunctiveQuery> probe = {
      test::Q("Q(x) :- Meetings(x, y)", schema),
      test::Q("Q(x) :- Contacts(x, e, p)", schema),
      test::Q("Q(x) :- Meetings(x, y)", schema),
  };
  // Expected whole-batch decisions under each policy (fresh principal):
  // A (meetings only): accept, refuse, accept. B: refuse, accept, refuse.
  const std::vector<bool> expect_a = {true, false, true};
  const std::vector<bool> expect_b = {false, true, false};

  DisclosureEngine engine(/*db=*/nullptr, &catalog, *policy_a);
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread swapper([&] {
    for (int i = 0; i < 400; ++i) {
      engine.UpdatePolicy((i % 2) == 0 ? *policy_b : *policy_a);
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      int serial = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Fresh principal per batch: decisions depend only on the policy
        // the batch's snapshot captured.
        const std::string name =
            "probe-" + std::to_string(t) + "-" + std::to_string(serial++);
        const std::vector<bool> out =
            engine.SubmitBatch(name, std::span(probe.data(), probe.size()));
        if (out != expect_a && out != expect_b) torn.fetch_add(1);
      }
    });
  }
  swapper.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(torn.load(), 0) << "a batch observed a half-updated policy";
  EXPECT_EQ(engine.Snapshot()->epoch(), 401u);
}

// Regression (found in review): per-principal slots must never move
// backwards across epochs. A caller holding a stale (older-epoch) snapshot
// is refused — it must reload and retry — instead of resetting the slot,
// which would erase the newer epoch's accumulated narrowing and let the
// next new-epoch request restart from the full mask.
TEST(EngineConcurrencyTest, PrincipalSlotsNeverRegressAcrossEpochs) {
  PrincipalStateMap map(4);
  auto narrow = [](uint64_t to) {
    return [to](policy::PrincipalState& state) {
      state.consistent = to;
      return true;
    };
  };
  ASSERT_TRUE(map.TryWithState("p", 1, 0b11, narrow(0b01)).has_value());
  // Epoch 2 advances the slot and resets it to the new init mask first.
  auto advanced =
      map.TryWithState("p", 2, 0b111, [](policy::PrincipalState& state) {
        EXPECT_EQ(state.consistent, 0b111u);
        state.consistent = 0b100;
        return true;
      });
  ASSERT_TRUE(advanced.has_value());
  // A stale epoch-1 caller is refused and must not touch the slot.
  EXPECT_FALSE(map.TryWithState("p", 1, 0b11, narrow(0b01)).has_value());
  EXPECT_FALSE(map.Consistent("p", 1, 0b11).has_value());
  // The epoch-2 narrowing survived the stale access.
  const std::optional<uint64_t> consistent = map.Consistent("p", 2, 0b111);
  ASSERT_TRUE(consistent.has_value());
  EXPECT_EQ(*consistent, 0b100u);
  // And a later epoch restarts from its own init mask.
  const std::optional<uint64_t> later = map.Consistent("p", 3, 0b1111);
  ASSERT_TRUE(later.has_value());
  EXPECT_EQ(*later, 0b1111u);
}

// Lifecycle stress (PR 5): submits racing principal sweeps AND epoch swaps
// on a capacity+TTL-bounded map. Run under TSan by CI. Evictions, residual
// rehydration, residual drops and floor-epoch refusals all interleave with
// the submit path here; the invariants checked are the ones that survive
// arbitrary interleaving — decision counters add up, the live-slot bound
// holds, and every principal stays answerable afterwards.
TEST(EngineConcurrencyTest, SubmitsRaceSweepsAndEpochSwaps) {
  FbFixture fb;
  policy::SecurityPolicy policy_a =
      workload::PolicyGenerator(&fb.catalog, {}, 0xabba01ULL).Next();
  policy::SecurityPolicy policy_b =
      workload::PolicyGenerator(&fb.catalog, {}, 0xabba02ULL).Next();
  const auto pool = RandomWorkload(&fb.schema, 2, 128, 0xfeedULL);

  EngineOptions options;
  options.principals.shards = 4;
  options.principals.max_principals = 8;
  options.principals.idle_ttl_ticks = 1;
  options.principal_sweep_interval = 16;  // auto-sweeps from submit threads
  DisclosureEngine engine(/*db=*/nullptr, &fb.catalog, policy_a, options);

  constexpr int kThreads = 4;
  constexpr int kSubmitsPerThread = 400;
  constexpr int kPrincipals = 24;  // 3x the live capacity: constant churn
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x1CEULL * (t + 1));
      for (int i = 0; i < kSubmitsPerThread; ++i) {
        const std::string principal =
            "p" + std::to_string(rng.Below(kPrincipals));
        if (rng.Chance(0.2)) {
          std::vector<cq::ConjunctiveQuery> batch;
          for (int j = 0; j < 4; ++j) {
            batch.push_back(pool[rng.Below(pool.size())]);
          }
          (void)engine.SubmitBatch(principal,
                                   std::span(batch.data(), batch.size()));
          i += 3;
        } else {
          (void)engine.Submit(principal, pool[rng.Below(pool.size())]);
        }
      }
    });
  }
  std::thread maintainer([&] {
    for (int i = 0; i < 60; ++i) {
      engine.UpdatePolicy((i % 2) == 0 ? policy_b : policy_a);
      (void)engine.SweepPrincipals();
      (void)engine.Stats();
      (void)engine.ConsistentPartitions("p0");
    }
  });
  for (std::thread& thread : threads) thread.join();
  maintainer.join();

  const DisclosureEngine::EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.submitted, stats.accepted + stats.refused);
  EXPECT_GE(stats.submitted,
            static_cast<uint64_t>(kThreads) * kSubmitsPerThread);
  EXPECT_LE(stats.num_principals, 8u);
  EXPECT_GT(stats.principal_map.evictions, 0u);
  // Quiesced: every principal is answerable under the final epoch.
  for (int p = 0; p < kPrincipals; ++p) {
    (void)engine.ConsistentPartitions("p" + std::to_string(p));
  }
}

// Concurrent submits on the SAME principal must serialize through the
// shard lock: the outcome must be *some* valid serialization. §6.2
// narrowing makes that checkable exactly: the final consistency bits must
// equal the AND of the allowed-partition masks of precisely the accepted
// labels, every accepted label's allowed mask must cover the final state,
// and every refused label's allowed mask must be disjoint from it (refusal
// happened at a superset of the final state, and AllowedPartitions is
// monotone in its candidate set).
TEST(EngineConcurrencyTest, SamePrincipalSubmitsAreAValidSerialization) {
  FbFixture fb;
  policy::SecurityPolicy policy =
      workload::PolicyGenerator(&fb.catalog, {}, 3ULL).Next();
  DisclosureEngine engine(/*db=*/nullptr, &fb.catalog, policy);
  const auto pool = RandomWorkload(&fb.schema, 1, 16, 0x42ULL);

  constexpr int kThreads = 8;
  constexpr int kSubmits = 200;
  std::vector<std::vector<bool>> decisions(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      decisions[t].reserve(kSubmits);
      for (int i = 0; i < kSubmits; ++i) {
        decisions[t].push_back(
            engine.Submit("hot-principal", pool[i % pool.size()]));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  label::LabelingPipeline seed(&fb.catalog);
  std::vector<uint64_t> allowed_full(pool.size());
  for (size_t q = 0; q < pool.size(); ++q) {
    allowed_full[q] = policy.AllowedPartitions(seed.Label(pool[q]),
                                               policy.AllPartitionsMask());
  }
  const uint64_t final_state = engine.ConsistentPartitions("hot-principal");
  uint64_t expected_final = policy.AllPartitionsMask();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kSubmits; ++i) {
      const uint64_t mask = allowed_full[i % pool.size()];
      if (decisions[t][i]) {
        expected_final &= mask;
        EXPECT_EQ(final_state & mask, final_state)
            << "accepted label does not cover the final state";
      } else {
        EXPECT_EQ(final_state & mask, 0u)
            << "refused label intersects the final state";
      }
    }
  }
  EXPECT_EQ(final_state, expected_final);
}

// EBR-specific stress (PR 10): readers label warm AND novel queries through
// Submit/SubmitBatch/SubmitCoalesced while a writer loop churns every
// retire source at once — UpdatePolicy (snapshot retire), SetShadowPolicy/
// ClearShadowPolicy (shadow snapshot retire), overlay growth with
// overlay_min_publish=1 (chunk swap + retire on nearly every novel label),
// and SweepPrincipals. Run under TSan and ASan by CI; a use-after-retire
// would surface there, and decision-counter balance is checked here.
TEST(EngineConcurrencyTest, EbrReadersRaceRetiresAcrossAllLayers) {
  FbFixture fb;
  policy::SecurityPolicy policy_a =
      workload::PolicyGenerator(&fb.catalog, {}, 0xebedULL).Next();
  policy::SecurityPolicy policy_b =
      workload::PolicyGenerator(&fb.catalog, {}, 0xebeeULL).Next();
  policy::SecurityPolicy shadow =
      workload::PolicyGenerator(&fb.catalog, {}, 0xebefULL).Next();
  const auto warm_pool = RandomWorkload(&fb.schema, 2, 64, 0x600dULL);
  // Disjoint per-thread novel slices: every novel label grows the overlay
  // and (with min_publish=1) swaps + retires an overlay chunk.
  const auto novel_pool = RandomWorkload(&fb.schema, 2, 512, 0xbadcab1eULL);

  EngineOptions options;
  options.reclaim = epoch::ReclaimChoice::kEbr;
  options.labeler.overlay_min_publish = 1;
  options.principals.shards = 4;
  options.principals.max_principals = 16;
  options.principals.idle_ttl_ticks = 1;
  DisclosureEngine engine(/*db=*/nullptr, &fb.catalog, policy_a, options);
  ASSERT_EQ(engine.reclaim_mode(), epoch::ReclaimMode::kEbr);

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 300;
  constexpr int kPrincipals = 12;
  std::atomic<uint64_t> decided{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(0xeb0ULL * (t + 1));
      size_t novel_at = static_cast<size_t>(t) * (novel_pool.size() / kThreads);
      const size_t novel_end = novel_at + novel_pool.size() / kThreads;
      auto next_query = [&]() -> const cq::ConjunctiveQuery& {
        // ~1 in 4 submissions is novel until the slice runs dry; the rest
        // stay warm so chunk hits and chunk swaps interleave constantly.
        if (novel_at < novel_end && rng.Chance(0.25)) {
          return novel_pool[novel_at++];
        }
        return warm_pool[rng.Below(warm_pool.size())];
      };
      std::vector<std::string> names(kPrincipals);
      for (int p = 0; p < kPrincipals; ++p) {
        names[p] = "p" + std::to_string(p);
      }
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::string& principal = names[rng.Below(kPrincipals)];
        if (rng.Chance(0.2)) {
          std::vector<cq::ConjunctiveQuery> batch;
          for (int j = 0; j < 4; ++j) batch.push_back(next_query());
          const auto out =
              engine.SubmitBatch(principal, std::span(batch.data(), 4));
          decided.fetch_add(out.size(), std::memory_order_relaxed);
        } else if (rng.Chance(0.2)) {
          std::vector<cq::ConjunctiveQuery> queries;
          for (int j = 0; j < 3; ++j) queries.push_back(next_query());
          std::vector<DisclosureEngine::SubmitRequest> requests(3);
          for (int j = 0; j < 3; ++j) {
            requests[j].principal = names[(rng.Below(kPrincipals))];
            requests[j].query = &queries[j];
          }
          std::vector<bool> decisions;
          engine.SubmitCoalesced(std::span(requests.data(), 3), &decisions);
          decided.fetch_add(decisions.size(), std::memory_order_relaxed);
        } else {
          (void)engine.Submit(principal, next_query());
          decided.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 80; ++i) {
      engine.UpdatePolicy((i % 2) == 0 ? policy_b : policy_a);
      if (i % 3 == 0) {
        engine.SetShadowPolicy(shadow, "stress-shadow");
      } else if (i % 3 == 1) {
        engine.ClearShadowPolicy();
      }
      (void)engine.SweepPrincipals();
      if (i % 10 == 0) (void)engine.Stats();
    }
  });
  for (std::thread& reader : readers) reader.join();
  writer.join();

  const DisclosureEngine::EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.submitted, stats.accepted + stats.refused);
  EXPECT_EQ(stats.submitted, decided.load());
  EXPECT_EQ(stats.reclaim, epoch::ReclaimMode::kEbr);
  // The writer loop actually exercised every retire source.
  EXPECT_GT(stats.labeler.overlay_chunk_publishes, 0u);
  EXPECT_GT(stats.ebr.retired, 0u);
  EXPECT_GT(stats.ebr.freed, 0u);
  // Quiesced: every principal is answerable under the final epoch.
  for (int p = 0; p < kPrincipals; ++p) {
    (void)engine.ConsistentPartitions("p" + std::to_string(p));
  }
}

// Differential oracle (PR 10): the EBR read path must be decision-for-
// decision bit-identical to the locked path. Two engines — explicit kEbr
// vs explicit kLocked — consume the same randomized single-threaded
// stream (singles, batches, coalesced groups, policy swaps, shadow
// set/clear at the same points); every decision vector, every principal's
// final consistency mask, the policy epoch and the shadow divergence
// counters must match exactly.
TEST(EngineConcurrencyTest, EbrDecisionsMatchLockedOracleBitIdentical) {
  FbFixture fb;
  policy::SecurityPolicy policy_a =
      workload::PolicyGenerator(&fb.catalog, {}, 0xd1f01ULL).Next();
  policy::SecurityPolicy policy_b =
      workload::PolicyGenerator(&fb.catalog, {}, 0xd1f02ULL).Next();
  policy::SecurityPolicy shadow =
      workload::PolicyGenerator(&fb.catalog, {}, 0xd1f03ULL).Next();
  const auto pool = RandomWorkload(&fb.schema, 2, 256, 0xd1f04ULL);

  EngineOptions ebr_options;
  ebr_options.reclaim = epoch::ReclaimChoice::kEbr;
  ebr_options.labeler.overlay_min_publish = 1;  // exercise the chunk path
  EngineOptions locked_options;
  locked_options.reclaim = epoch::ReclaimChoice::kLocked;
  DisclosureEngine ebr(/*db=*/nullptr, &fb.catalog, policy_a, ebr_options);
  DisclosureEngine locked(/*db=*/nullptr, &fb.catalog, policy_a,
                          locked_options);
  ASSERT_EQ(ebr.reclaim_mode(), epoch::ReclaimMode::kEbr);
  ASSERT_EQ(locked.reclaim_mode(), epoch::ReclaimMode::kLocked);

  constexpr int kPrincipals = 6;
  constexpr int kSteps = 1200;
  auto name_of = [](uint64_t p) { return "diff-" + std::to_string(p); };
  Rng rng(0xd1f05ULL);
  bool shadow_on = false;
  for (int step = 0; step < kSteps; ++step) {
    if (step % 97 == 42) {
      const auto& next = (step / 97) % 2 == 0 ? policy_b : policy_a;
      EXPECT_EQ(ebr.UpdatePolicy(next), locked.UpdatePolicy(next));
    }
    if (step % 131 == 7) {
      if (shadow_on) {
        ebr.ClearShadowPolicy();
        locked.ClearShadowPolicy();
      } else {
        EXPECT_EQ(ebr.SetShadowPolicy(shadow, "diff-shadow"),
                  locked.SetShadowPolicy(shadow, "diff-shadow"));
      }
      shadow_on = !shadow_on;
    }
    const std::string principal = name_of(rng.Below(kPrincipals));
    if (rng.Chance(0.2)) {
      std::vector<cq::ConjunctiveQuery> batch;
      const int span = static_cast<int>(rng.Below(6)) + 1;
      for (int j = 0; j < span; ++j) {
        batch.push_back(pool[rng.Below(pool.size())]);
      }
      const auto batch_span = std::span(batch.data(), batch.size());
      EXPECT_EQ(ebr.SubmitBatch(principal, batch_span),
                locked.SubmitBatch(principal, batch_span))
          << "batch diverged at step " << step;
    } else if (rng.Chance(0.15)) {
      std::vector<cq::ConjunctiveQuery> queries;
      std::vector<std::string> names;
      for (int j = 0; j < 4; ++j) {
        queries.push_back(pool[rng.Below(pool.size())]);
        names.push_back(name_of(rng.Below(kPrincipals)));
      }
      std::vector<DisclosureEngine::SubmitRequest> requests(4);
      for (int j = 0; j < 4; ++j) {
        requests[j].principal = names[j];
        requests[j].query = &queries[j];
      }
      std::vector<bool> ebr_out, locked_out;
      ebr.SubmitCoalesced(std::span(requests.data(), 4), &ebr_out);
      locked.SubmitCoalesced(std::span(requests.data(), 4), &locked_out);
      EXPECT_EQ(ebr_out, locked_out) << "coalesced diverged at step " << step;
    } else {
      const auto& query = pool[rng.Below(pool.size())];
      EXPECT_EQ(ebr.Submit(principal, query), locked.Submit(principal, query))
          << "submit diverged at step " << step;
    }
  }

  for (int p = 0; p < kPrincipals; ++p) {
    EXPECT_EQ(ebr.ConsistentPartitions(name_of(p)),
              locked.ConsistentPartitions(name_of(p)));
  }
  const auto ebr_stats = ebr.Stats();
  const auto locked_stats = locked.Stats();
  EXPECT_EQ(ebr_stats.epoch, locked_stats.epoch);
  EXPECT_EQ(ebr_stats.submitted, locked_stats.submitted);
  EXPECT_EQ(ebr_stats.accepted, locked_stats.accepted);
  EXPECT_EQ(ebr_stats.refused, locked_stats.refused);
  EXPECT_EQ(ebr_stats.shadow.evaluated, locked_stats.shadow.evaluated);
  EXPECT_EQ(ebr_stats.shadow.agree, locked_stats.shadow.agree);
  EXPECT_EQ(ebr_stats.shadow.shadow_stricter,
            locked_stats.shadow.shadow_stricter);
  EXPECT_EQ(ebr_stats.shadow.shadow_looser, locked_stats.shadow.shadow_looser);
  // The differential is only meaningful if the EBR engine actually served
  // from the lock-free chunk tier.
  EXPECT_GT(ebr_stats.labeler.overlay_chunk_hits, 0u);
}

// The acceptance property of the whole refactor: with FDC_EPOCH=ebr (forced
// explicitly here so the test is env-independent), warm-path Submit /
// SubmitBatch / SubmitCoalesced perform ZERO reader-side mutex or
// shared_mutex acquisitions — measured by the thread-local
// locks::ReaderLockAcquisitions() counter that every counted lock in the
// read path reports into. The locked oracle engine runs the identical
// sequence as a sanity check that the counter actually counts.
TEST(EngineConcurrencyTest, WarmPathTakesZeroReaderLocksUnderEbr) {
  FbFixture fb;
  policy::SecurityPolicy policy =
      workload::PolicyGenerator(&fb.catalog, {}, 0x10cc5ULL).Next();
  const auto pool = RandomWorkload(&fb.schema, 2, 48, 0x10cc6ULL);

  auto run_warm_traffic = [&](DisclosureEngine& engine) {
    for (size_t q = 0; q < pool.size(); ++q) {
      (void)engine.Submit("locks-single", pool[q]);
    }
    std::vector<cq::ConjunctiveQuery> batch(pool.begin(), pool.end());
    (void)engine.SubmitBatch("locks-batch",
                             std::span(batch.data(), batch.size()));
    std::vector<DisclosureEngine::SubmitRequest> requests(pool.size());
    for (size_t q = 0; q < pool.size(); ++q) {
      requests[q].principal = "locks-coalesced";
      requests[q].query = &pool[q];
    }
    std::vector<bool> decisions;
    engine.SubmitCoalesced(std::span(requests.data(), requests.size()),
                           &decisions);
  };

  // EBR leg: with overlay_min_publish=1 every novel label publishes a
  // fresh chunk, so after one warm pass the entire pool is chunk-resident
  // and the measured pass is pure lock-free tier for labeling AND an
  // epoch-pinned raw-pointer load for the snapshot.
  EngineOptions ebr_options;
  ebr_options.reclaim = epoch::ReclaimChoice::kEbr;
  ebr_options.labeler.overlay_min_publish = 1;
  DisclosureEngine ebr(/*db=*/nullptr, &fb.catalog, policy, ebr_options);
  run_warm_traffic(ebr);  // warm-up pass (takes writer locks: uncounted)
  const uint64_t ebr_before = locks::ReaderLockAcquisitions();
  run_warm_traffic(ebr);
  const uint64_t ebr_delta = locks::ReaderLockAcquisitions() - ebr_before;
  EXPECT_EQ(ebr_delta, 0u)
      << "EBR warm path took reader-side lock acquisitions";
  EXPECT_EQ(ebr.Stats().labeler.overlay_reader_locks, 0u);
  EXPECT_GT(ebr.Stats().labeler.overlay_chunk_hits, 0u);

  // Locked oracle leg: the identical sequence must report reader locks,
  // proving the counter is live (i.e. the EBR zero is not vacuous).
  EngineOptions locked_options;
  locked_options.reclaim = epoch::ReclaimChoice::kLocked;
  DisclosureEngine locked(/*db=*/nullptr, &fb.catalog, policy, locked_options);
  run_warm_traffic(locked);
  const uint64_t locked_before = locks::ReaderLockAcquisitions();
  run_warm_traffic(locked);
  const uint64_t locked_delta = locks::ReaderLockAcquisitions() - locked_before;
  EXPECT_GT(locked_delta, 0u)
      << "counter dead: locked warm path reported zero reader locks";
  EXPECT_GT(locked.Stats().labeler.overlay_reader_locks, 0u);
}

}  // namespace
}  // namespace fdc::engine
