// Decision-equivalence property suite: a 1-thread DisclosureEngine must
// produce byte-identical accept/refuse sequences to the seed
// ReferenceMonitor / GuardedDatabase path on randomized workloads, and the
// engine's labels must match the seed labeler's exactly. This is the oracle
// that licenses every concurrency optimization in src/engine/ — if the
// frozen tier, the overlay, or the sharded state ever drift from the seed
// semantics, this suite is meant to catch it.
#include "engine/disclosure_engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "label/pipeline.h"
#include "policy/reference_monitor.h"
#include "rewriting/atom_rewriting.h"
#include "storage/guarded_database.h"
#include "test_util.h"
#include "workload/policy_generator.h"
#include "workload/query_generator.h"

namespace fdc::engine {
namespace {

using test::FbFixture;
using test::RandomWorkload;

// Engine labels agree exactly with the seed labeler on random workloads —
// through the frozen warmup tier, the dynamic overlay, and the saturated
// stateless fallback alike.
TEST(EngineEquivalenceTest, LabelsMatchSeedPipeline) {
  FbFixture fb;
  const auto pool = RandomWorkload(&fb.schema, 3, 300, 0xfeed'beefULL);
  // Warm the frozen tier with a prefix so all three tiers are exercised.
  const std::span<const cq::ConjunctiveQuery> warmup(pool.data(), 100);
  ConcurrentLabeler::Options tight;
  tight.max_interned_queries = 50;  // force stateless fallbacks too
  EngineOptions options;
  options.labeler = tight;
  DisclosureEngine engine(/*db=*/nullptr, &fb.catalog,
                          workload::PolicyGenerator(&fb.catalog, {}, 7).Next(),
                          options, warmup);

  label::LabelingPipeline seed(&fb.catalog);
  for (const cq::ConjunctiveQuery& query : pool) {
    EXPECT_EQ(engine.Explain(query), seed.Label(query));
  }
  const DisclosureEngine::EngineStats stats = engine.Stats();
  EXPECT_GT(stats.labeler.frozen_hits, 0u);
  EXPECT_GT(stats.labeler.overlay_misses, 0u);
  EXPECT_GT(stats.labeler.stateless_fallbacks, 0u);
}

// The core acceptance property: randomized multi-principal workloads give
// identical accept/refuse sequences on the engine and on the seed
// ReferenceMonitor path, and identical final consistency bits.
TEST(EngineEquivalenceTest, DecisionSequencesMatchSeedMonitor) {
  FbFixture fb;
  constexpr int kPrincipals = 7;
  constexpr int kQueries = 400;
  for (uint64_t seed : {0x1ULL, 0xdecade'5eedULL, 0xc0ffeeULL}) {
    workload::PolicyOptions popts;
    popts.max_partitions = 5;
    popts.max_elements_per_partition = 15;
    policy::SecurityPolicy policy =
        workload::PolicyGenerator(&fb.catalog, popts, seed).Next();

    DisclosureEngine engine(/*db=*/nullptr, &fb.catalog, policy);

    label::LabelingPipeline pipeline(&fb.catalog);
    policy::ReferenceMonitor monitor(&policy);
    std::vector<policy::PrincipalState> states(kPrincipals,
                                               monitor.InitialState());

    const auto pool = RandomWorkload(&fb.schema, 2, kQueries, seed ^ 0xabcd);
    Rng rng(seed * 31 + 1);
    for (int i = 0; i < kQueries; ++i) {
      const int p = static_cast<int>(rng.Below(kPrincipals));
      const std::string name = "principal-" + std::to_string(p);
      const bool seed_decision =
          monitor.Submit(&states[p], pipeline.Label(pool[i]));
      const bool engine_decision = engine.Submit(name, pool[i]);
      ASSERT_EQ(engine_decision, seed_decision)
          << "divergence at query " << i << " principal " << p << " seed "
          << seed;
    }
    for (int p = 0; p < kPrincipals; ++p) {
      EXPECT_EQ(
          engine.ConsistentPartitions("principal-" + std::to_string(p)),
          states[p].consistent);
    }
  }
}

// SubmitBatch must agree with per-query Submit (and hence with the seed).
TEST(EngineEquivalenceTest, SubmitBatchMatchesSequentialSubmit) {
  FbFixture fb;
  policy::SecurityPolicy policy =
      workload::PolicyGenerator(&fb.catalog, {}, 0x5107ULL).Next();
  DisclosureEngine batched(/*db=*/nullptr, &fb.catalog, policy);
  DisclosureEngine sequential(/*db=*/nullptr, &fb.catalog, policy);

  const auto pool = RandomWorkload(&fb.schema, 3, 256, 0x77ULL);
  const std::vector<bool> batch =
      batched.SubmitBatch("app", std::span(pool.data(), pool.size()));
  ASSERT_EQ(batch.size(), pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(batch[i], sequential.Submit("app", pool[i])) << "query " << i;
  }
  EXPECT_EQ(batched.ConsistentPartitions("app"),
            sequential.ConsistentPartitions("app"));
}

// GuardedDatabase engine mode vs seed mode: same evaluated rows, same
// refusals, same diagnostics — on the paper's running example.
TEST(EngineEquivalenceTest, GuardedDatabaseModesAgree) {
  cq::Schema schema = test::MakePaperSchema();
  storage::Database db(&schema);
  (void)db.Insert("Meetings", {"9", "Jim"});
  (void)db.Insert("Meetings", {"10", "Cathy"});
  (void)db.Insert("Contacts", {"Jim", "jim@e.com", "Manager"});

  label::ViewCatalog catalog(&schema);
  (void)catalog.AddViewText("meetings_full", "V(x, y) :- Meetings(x, y)");
  (void)catalog.AddViewText("contacts_full",
                            "V(x, y, z) :- Contacts(x, y, z)");
  auto policy = policy::SecurityPolicy::Compile(
      catalog, {{"meetings", {catalog.FindByName("meetings_full")->id}},
                {"contacts", {catalog.FindByName("contacts_full")->id}}});
  ASSERT_TRUE(policy.ok());

  storage::GuardedOptions seed_mode;
  seed_mode.use_engine = false;
  storage::GuardedDatabase via_engine(&db, &catalog, &*policy);
  storage::GuardedDatabase via_seed(&db, &catalog, &*policy, seed_mode);
  ASSERT_NE(via_engine.mutable_engine(), nullptr);
  ASSERT_EQ(via_seed.mutable_engine(), nullptr);

  const std::vector<std::pair<std::string, std::string>> session = {
      {"app", "SELECT time FROM Meetings"},
      {"app", "SELECT email FROM Contacts"},       // wall: refused
      {"crm", "SELECT email FROM Contacts"},
      {"crm", "SELECT time FROM Meetings"},        // wall: refused
  };
  for (const auto& [principal, sql] : session) {
    auto a = via_engine.QuerySql(principal, sql);
    auto b = via_seed.QuerySql(principal, sql);
    ASSERT_EQ(a.ok(), b.ok()) << sql;
    if (a.ok()) {
      EXPECT_EQ(*a, *b) << sql;
    } else {
      EXPECT_EQ(a.status().code(), b.status().code()) << sql;
    }
    EXPECT_EQ(via_engine.ConsistentPartitions(principal),
              via_seed.ConsistentPartitions(principal));
  }
}

// A policy swap resets cumulative state at the new epoch and is effective
// immediately for decisions (single-threaded semantics; the concurrent
// atomicity of the swap is covered by engine_concurrency_test).
TEST(EngineEquivalenceTest, PolicyEpochSwapResetsStateConsistently) {
  cq::Schema schema = test::MakePaperSchema();
  label::ViewCatalog catalog(&schema);
  (void)catalog.AddViewText("meetings_full", "V(x, y) :- Meetings(x, y)");
  (void)catalog.AddViewText("contacts_full",
                            "V(x, y, z) :- Contacts(x, y, z)");
  const int meetings = catalog.FindByName("meetings_full")->id;
  const int contacts = catalog.FindByName("contacts_full")->id;
  auto meetings_only =
      policy::SecurityPolicy::Compile(catalog, {{"m", {meetings}}});
  auto contacts_only =
      policy::SecurityPolicy::Compile(catalog, {{"c", {contacts}}});
  ASSERT_TRUE(meetings_only.ok());
  ASSERT_TRUE(contacts_only.ok());

  DisclosureEngine engine(/*db=*/nullptr, &catalog, *meetings_only);
  const cq::ConjunctiveQuery meetings_q =
      test::Q("Q(x) :- Meetings(x, y)", schema);
  const cq::ConjunctiveQuery contacts_q =
      test::Q("Q(x) :- Contacts(x, e, p)", schema);

  EXPECT_TRUE(engine.Submit("app", meetings_q));
  EXPECT_FALSE(engine.Submit("app", contacts_q));
  EXPECT_EQ(engine.Snapshot()->epoch(), 1u);

  const uint64_t epoch = engine.UpdatePolicy(*contacts_only);
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(engine.Snapshot()->epoch(), 2u);
  // Under the new epoch the principal restarts from the new policy's full
  // mask: contacts is now allowed, meetings refused.
  EXPECT_TRUE(engine.Submit("app", contacts_q));
  EXPECT_FALSE(engine.Submit("app", meetings_q));
}

// ---------------------------------------------------------------------------
// Wide-catalog equivalence: the same decision-identity properties, on a
// catalog whose relations cross the former packed 32-views edge (40 and 72
// views per relation, one- and two-word masks plus a narrow control). Both
// routes label through the wide compiled matcher, so no view is excluded on
// either side; the suite checks they still agree query-for-query —
// including across an epoch swap whose partitions are built almost entirely
// from views with bit ≥ 32.
// ---------------------------------------------------------------------------

// A deterministic catalog with `views` random single-atom views on each
// relation of a 3-relation schema (arities 3/4/2).
struct WideFixture {
  cq::Schema schema;
  std::unique_ptr<label::ViewCatalog> catalog;
  std::vector<int> arities{3, 4, 2};
  // Per-relation view counts: one narrow control, one one-word wide
  // relation, one two-word relation.
  std::vector<int> views_per_relation{8, 40, 72};

  explicit WideFixture(uint64_t seed) {
    (void)schema.AddRelation("A", {"x", "y", "z"});
    (void)schema.AddRelation("B", {"x", "y", "z", "w"});
    (void)schema.AddRelation("C", {"x", "y"});
    catalog = std::make_unique<label::ViewCatalog>(&schema);
    Rng rng(seed);
    for (int relation = 0; relation < 3; ++relation) {
      for (int k = 0; k < views_per_relation[relation]; ++k) {
        const cq::AtomPattern pattern =
            test::RandomPattern(&rng, relation, arities[relation]);
        (void)catalog->AddView(
            "w" + std::to_string(relation) + "_" + std::to_string(k),
            pattern.ToQuery("V"));
      }
    }
  }

  cq::ConjunctiveQuery RandomQuery(Rng* rng) const {
    const int natoms = 1 + static_cast<int>(rng->Below(2));
    std::vector<cq::Atom> atoms;
    std::vector<bool> used(3, false);
    for (int a = 0; a < natoms; ++a) {
      const int relation = static_cast<int>(rng->Below(3));
      std::vector<cq::Term> terms;
      for (int p = 0; p < arities[relation]; ++p) {
        if (rng->Chance(0.3)) {
          terms.push_back(cq::Term::Const(std::string(1, 'a' + rng->Below(4))));
        } else {
          const int v = static_cast<int>(rng->Below(3));
          used[v] = true;
          terms.push_back(cq::Term::Var(v));
        }
      }
      atoms.emplace_back(relation, std::move(terms));
    }
    std::vector<cq::Term> head;
    for (int v = 0; v < 3; ++v) {
      if (used[v] && rng->Chance(0.5)) head.push_back(cq::Term::Var(v));
    }
    return cq::ConjunctiveQuery("Q", std::move(head), std::move(atoms));
  }
};

TEST(EngineEquivalenceTest, WideCatalogDecisionsMatchSeedMonitor) {
  constexpr int kPrincipals = 5;
  constexpr int kQueries = 300;
  for (uint64_t seed : {0x11dULL, 0x5eedULL}) {
    WideFixture wide(seed);
    ASSERT_GT(wide.catalog->MaxViewsPerRelation(), 64);
    policy::SecurityPolicy policy =
        workload::PolicyGenerator(wide.catalog.get(), {}, seed ^ 0x99).Next();

    DisclosureEngine engine(/*db=*/nullptr, wide.catalog.get(), policy);
    label::LabelingPipeline pipeline(wide.catalog.get());
    policy::ReferenceMonitor monitor(&policy);
    std::vector<policy::PrincipalState> states(kPrincipals,
                                               monitor.InitialState());

    Rng rng(seed * 77 + 3);
    for (int i = 0; i < kQueries; ++i) {
      const cq::ConjunctiveQuery query = wide.RandomQuery(&rng);
      const int p = static_cast<int>(rng.Below(kPrincipals));
      const std::string name = "wide-principal-" + std::to_string(p);
      const label::DisclosureLabel seed_label = pipeline.Label(query);
      // Labels agree exactly (including which atoms ride wide), so the
      // decisions below diverge only if the policy/monitor widening broke.
      ASSERT_EQ(engine.Explain(query), seed_label) << "query " << i;
      const bool seed_decision = monitor.Submit(&states[p], seed_label);
      ASSERT_EQ(engine.Submit(name, query), seed_decision)
          << "divergence at query " << i << " principal " << p;
    }
    for (int p = 0; p < kPrincipals; ++p) {
      EXPECT_EQ(engine.ConsistentPartitions("wide-principal-" +
                                            std::to_string(p)),
                states[p].consistent);
    }
    // The wide path was actually exercised.
    EXPECT_GT(engine.Stats().labeler.wide_mask_evals, 0u);
  }
}

TEST(EngineEquivalenceTest, WideCatalogEpochSwapMatchesSeedReset) {
  WideFixture wide(0xabcdULL);
  // Partitions drawn from the >32-bit view range: a policy whose decisions
  // are *only* correct if no view is excluded anywhere.
  auto high_bit_partition = [&](int relation, int first_bit, int count,
                                const std::string& name) {
    policy::Partition part;
    part.name = name;
    const auto& ids = wide.catalog->ViewsOfRelation(relation);
    for (int b = first_bit; b < first_bit + count &&
                            b < static_cast<int>(ids.size());
         ++b) {
      part.view_ids.push_back(ids[b]);
    }
    return part;
  };
  auto policy_a = policy::SecurityPolicy::Compile(
      *wide.catalog, {high_bit_partition(1, 33, 7, "b-high"),
                      high_bit_partition(2, 40, 30, "c-mid")});
  auto policy_b = policy::SecurityPolicy::Compile(
      *wide.catalog, {high_bit_partition(2, 64, 8, "c-high"),
                      high_bit_partition(0, 0, 8, "a-all")});
  ASSERT_TRUE(policy_a.ok());
  ASSERT_TRUE(policy_b.ok());

  DisclosureEngine engine(/*db=*/nullptr, wide.catalog.get(), *policy_a);
  label::LabelingPipeline pipeline(wide.catalog.get());
  policy::ReferenceMonitor monitor_a(&*policy_a);
  policy::ReferenceMonitor monitor_b(&*policy_b);
  policy::PrincipalState state = monitor_a.InitialState();

  Rng rng(0x715ULL);
  for (int i = 0; i < 150; ++i) {
    const cq::ConjunctiveQuery query = wide.RandomQuery(&rng);
    ASSERT_EQ(engine.Submit("app", query),
              monitor_a.Submit(&state, pipeline.Label(query)))
        << "pre-swap query " << i;
  }
  EXPECT_EQ(engine.ConsistentPartitions("app"), state.consistent);

  // Swap: the engine restarts the principal at the new policy's full mask;
  // the seed side mirrors that with a fresh monitor + state.
  engine.UpdatePolicy(*policy_b);
  state = monitor_b.InitialState();
  for (int i = 0; i < 150; ++i) {
    const cq::ConjunctiveQuery query = wide.RandomQuery(&rng);
    ASSERT_EQ(engine.Submit("app", query),
              monitor_b.Submit(&state, pipeline.Label(query)))
        << "post-swap query " << i;
  }
  EXPECT_EQ(engine.ConsistentPartitions("app"), state.consistent);
}

// The frozen tier's catalog-level precomputations agree with direct
// computation: per-view labels and the rewriting-order closure.
TEST(EngineEquivalenceTest, FrozenCatalogClosureMatchesDirect) {
  FbFixture fb;
  auto frozen = FrozenCatalog::Build(&fb.catalog);
  label::LabelerPipeline seed(&fb.catalog);
  for (int v = 0; v < fb.catalog.size(); ++v) {
    EXPECT_EQ(frozen->ViewLabel(v),
              seed.LabelPacked(fb.catalog.view(v).pattern.ToQuery("V")));
    for (int w = 0; w < fb.catalog.size(); ++w) {
      EXPECT_EQ(frozen->ViewLeq(v, w),
                rewriting::AtomRewritable(fb.catalog.view(v).pattern,
                                          fb.catalog.view(w).pattern))
          << "views " << v << ", " << w;
    }
  }
}

}  // namespace
}  // namespace fdc::engine
