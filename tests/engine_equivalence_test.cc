// Decision-equivalence property suite: a 1-thread DisclosureEngine must
// produce byte-identical accept/refuse sequences to the seed
// ReferenceMonitor / GuardedDatabase path on randomized workloads, and the
// engine's labels must match the seed labeler's exactly. This is the oracle
// that licenses every concurrency optimization in src/engine/ — if the
// frozen tier, the overlay, or the sharded state ever drift from the seed
// semantics, this suite is meant to catch it.
#include "engine/disclosure_engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "label/pipeline.h"
#include "policy/reference_monitor.h"
#include "rewriting/atom_rewriting.h"
#include "storage/guarded_database.h"
#include "test_util.h"
#include "workload/policy_generator.h"
#include "workload/query_generator.h"

namespace fdc::engine {
namespace {

using test::FbFixture;
using test::RandomWorkload;

// Engine labels agree exactly with the seed labeler on random workloads —
// through the frozen warmup tier, the dynamic overlay, and the saturated
// stateless fallback alike.
TEST(EngineEquivalenceTest, LabelsMatchSeedPipeline) {
  FbFixture fb;
  const auto pool = RandomWorkload(&fb.schema, 3, 300, 0xfeed'beefULL);
  // Warm the frozen tier with a prefix so all three tiers are exercised.
  const std::span<const cq::ConjunctiveQuery> warmup(pool.data(), 100);
  ConcurrentLabeler::Options tight;
  tight.max_interned_queries = 50;  // force stateless fallbacks too
  EngineOptions options;
  options.labeler = tight;
  DisclosureEngine engine(/*db=*/nullptr, &fb.catalog,
                          workload::PolicyGenerator(&fb.catalog, {}, 7).Next(),
                          options, warmup);

  label::LabelingPipeline seed(&fb.catalog);
  for (const cq::ConjunctiveQuery& query : pool) {
    EXPECT_EQ(engine.Explain(query), seed.Label(query));
  }
  const DisclosureEngine::EngineStats stats = engine.Stats();
  EXPECT_GT(stats.labeler.frozen_hits, 0u);
  EXPECT_GT(stats.labeler.overlay_misses, 0u);
  EXPECT_GT(stats.labeler.stateless_fallbacks, 0u);
}

// The core acceptance property: randomized multi-principal workloads give
// identical accept/refuse sequences on the engine and on the seed
// ReferenceMonitor path, and identical final consistency bits.
TEST(EngineEquivalenceTest, DecisionSequencesMatchSeedMonitor) {
  FbFixture fb;
  constexpr int kPrincipals = 7;
  constexpr int kQueries = 400;
  for (uint64_t seed : {0x1ULL, 0xdecade'5eedULL, 0xc0ffeeULL}) {
    workload::PolicyOptions popts;
    popts.max_partitions = 5;
    popts.max_elements_per_partition = 15;
    policy::SecurityPolicy policy =
        workload::PolicyGenerator(&fb.catalog, popts, seed).Next();

    DisclosureEngine engine(/*db=*/nullptr, &fb.catalog, policy);

    label::LabelingPipeline pipeline(&fb.catalog);
    policy::ReferenceMonitor monitor(&policy);
    std::vector<policy::PrincipalState> states(kPrincipals,
                                               monitor.InitialState());

    const auto pool = RandomWorkload(&fb.schema, 2, kQueries, seed ^ 0xabcd);
    Rng rng(seed * 31 + 1);
    for (int i = 0; i < kQueries; ++i) {
      const int p = static_cast<int>(rng.Below(kPrincipals));
      const std::string name = "principal-" + std::to_string(p);
      const bool seed_decision =
          monitor.Submit(&states[p], pipeline.Label(pool[i]));
      const bool engine_decision = engine.Submit(name, pool[i]);
      ASSERT_EQ(engine_decision, seed_decision)
          << "divergence at query " << i << " principal " << p << " seed "
          << seed;
    }
    for (int p = 0; p < kPrincipals; ++p) {
      EXPECT_EQ(
          engine.ConsistentPartitions("principal-" + std::to_string(p)),
          states[p].consistent);
    }
  }
}

// SubmitBatch must agree with per-query Submit (and hence with the seed).
TEST(EngineEquivalenceTest, SubmitBatchMatchesSequentialSubmit) {
  FbFixture fb;
  policy::SecurityPolicy policy =
      workload::PolicyGenerator(&fb.catalog, {}, 0x5107ULL).Next();
  DisclosureEngine batched(/*db=*/nullptr, &fb.catalog, policy);
  DisclosureEngine sequential(/*db=*/nullptr, &fb.catalog, policy);

  const auto pool = RandomWorkload(&fb.schema, 3, 256, 0x77ULL);
  const std::vector<bool> batch =
      batched.SubmitBatch("app", std::span(pool.data(), pool.size()));
  ASSERT_EQ(batch.size(), pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(batch[i], sequential.Submit("app", pool[i])) << "query " << i;
  }
  EXPECT_EQ(batched.ConsistentPartitions("app"),
            sequential.ConsistentPartitions("app"));
}

// GuardedDatabase engine mode vs seed mode: same evaluated rows, same
// refusals, same diagnostics — on the paper's running example.
TEST(EngineEquivalenceTest, GuardedDatabaseModesAgree) {
  cq::Schema schema = test::MakePaperSchema();
  storage::Database db(&schema);
  (void)db.Insert("Meetings", {"9", "Jim"});
  (void)db.Insert("Meetings", {"10", "Cathy"});
  (void)db.Insert("Contacts", {"Jim", "jim@e.com", "Manager"});

  label::ViewCatalog catalog(&schema);
  (void)catalog.AddViewText("meetings_full", "V(x, y) :- Meetings(x, y)");
  (void)catalog.AddViewText("contacts_full",
                            "V(x, y, z) :- Contacts(x, y, z)");
  auto policy = policy::SecurityPolicy::Compile(
      catalog, {{"meetings", {catalog.FindByName("meetings_full")->id}},
                {"contacts", {catalog.FindByName("contacts_full")->id}}});
  ASSERT_TRUE(policy.ok());

  storage::GuardedOptions seed_mode;
  seed_mode.use_engine = false;
  storage::GuardedDatabase via_engine(&db, &catalog, &*policy);
  storage::GuardedDatabase via_seed(&db, &catalog, &*policy, seed_mode);
  ASSERT_NE(via_engine.mutable_engine(), nullptr);
  ASSERT_EQ(via_seed.mutable_engine(), nullptr);

  const std::vector<std::pair<std::string, std::string>> session = {
      {"app", "SELECT time FROM Meetings"},
      {"app", "SELECT email FROM Contacts"},       // wall: refused
      {"crm", "SELECT email FROM Contacts"},
      {"crm", "SELECT time FROM Meetings"},        // wall: refused
  };
  for (const auto& [principal, sql] : session) {
    auto a = via_engine.QuerySql(principal, sql);
    auto b = via_seed.QuerySql(principal, sql);
    ASSERT_EQ(a.ok(), b.ok()) << sql;
    if (a.ok()) {
      EXPECT_EQ(*a, *b) << sql;
    } else {
      EXPECT_EQ(a.status().code(), b.status().code()) << sql;
    }
    EXPECT_EQ(via_engine.ConsistentPartitions(principal),
              via_seed.ConsistentPartitions(principal));
  }
}

// A policy swap resets cumulative state at the new epoch and is effective
// immediately for decisions (single-threaded semantics; the concurrent
// atomicity of the swap is covered by engine_concurrency_test).
TEST(EngineEquivalenceTest, PolicyEpochSwapResetsStateConsistently) {
  cq::Schema schema = test::MakePaperSchema();
  label::ViewCatalog catalog(&schema);
  (void)catalog.AddViewText("meetings_full", "V(x, y) :- Meetings(x, y)");
  (void)catalog.AddViewText("contacts_full",
                            "V(x, y, z) :- Contacts(x, y, z)");
  const int meetings = catalog.FindByName("meetings_full")->id;
  const int contacts = catalog.FindByName("contacts_full")->id;
  auto meetings_only =
      policy::SecurityPolicy::Compile(catalog, {{"m", {meetings}}});
  auto contacts_only =
      policy::SecurityPolicy::Compile(catalog, {{"c", {contacts}}});
  ASSERT_TRUE(meetings_only.ok());
  ASSERT_TRUE(contacts_only.ok());

  DisclosureEngine engine(/*db=*/nullptr, &catalog, *meetings_only);
  const cq::ConjunctiveQuery meetings_q =
      test::Q("Q(x) :- Meetings(x, y)", schema);
  const cq::ConjunctiveQuery contacts_q =
      test::Q("Q(x) :- Contacts(x, e, p)", schema);

  EXPECT_TRUE(engine.Submit("app", meetings_q));
  EXPECT_FALSE(engine.Submit("app", contacts_q));
  EXPECT_EQ(engine.Snapshot()->epoch(), 1u);

  const uint64_t epoch = engine.UpdatePolicy(*contacts_only);
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(engine.Snapshot()->epoch(), 2u);
  // Under the new epoch the principal restarts from the new policy's full
  // mask: contacts is now allowed, meetings refused.
  EXPECT_TRUE(engine.Submit("app", contacts_q));
  EXPECT_FALSE(engine.Submit("app", meetings_q));
}

// The frozen tier's catalog-level precomputations agree with direct
// computation: per-view labels and the rewriting-order closure.
TEST(EngineEquivalenceTest, FrozenCatalogClosureMatchesDirect) {
  FbFixture fb;
  auto frozen = FrozenCatalog::Build(&fb.catalog);
  label::LabelerPipeline seed(&fb.catalog);
  for (int v = 0; v < fb.catalog.size(); ++v) {
    EXPECT_EQ(frozen->ViewLabel(v),
              seed.LabelPacked(fb.catalog.view(v).pattern.ToQuery("V")));
    for (int w = 0; w < fb.catalog.size(); ++w) {
      EXPECT_EQ(frozen->ViewLeq(v, w),
                rewriting::AtomRewritable(fb.catalog.view(v).pattern,
                                          fb.catalog.view(w).pattern))
          << "views " << v << ", " << w;
    }
  }
}

}  // namespace
}  // namespace fdc::engine
