#include "label/dissect.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fdc::label {
namespace {

using cq::AtomPattern;
using cq::Schema;

class DissectTest : public ::testing::Test {
 protected:
  Schema schema_ = test::MakePaperSchema();
};

// Example 5.4: Dissect([M(x_d, y_e), C(y_e, w_e, 'Intern')]) promotes the
// join variable y and yields [M(x_d, y_d)], [C(y_d, w_e, 'Intern')].
TEST_F(DissectTest, Example54PromotesJoinVariable) {
  auto q = test::Q("Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
                   schema_);
  std::vector<AtomPattern> atoms = Dissect(q);
  ASSERT_EQ(atoms.size(), 2u);
  EXPECT_EQ(atoms[0], test::P("A(x, y) :- Meetings(x, y)", schema_));
  EXPECT_EQ(atoms[1],
            test::P("B(y) :- Contacts(y, w, 'Intern')", schema_));
}

TEST_F(DissectTest, SingleAtomPassThrough) {
  auto q = test::Q("Q1(x) :- Meetings(x, 'Cathy')", schema_);
  std::vector<AtomPattern> atoms = Dissect(q);
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_EQ(atoms[0], test::P("A(x) :- Meetings(x, 'Cathy')", schema_));
}

TEST_F(DissectTest, FoldingRemovesRedundantAtoms) {
  auto q = test::Q("Q(x) :- Meetings(x, y), Meetings(x, z)", schema_);
  EXPECT_EQ(Dissect(q).size(), 1u);
  // Without folding, the redundant atom inflates the label: both atoms
  // remain and the shared variable x is promoted in each.
  DissectOptions no_fold;
  no_fold.fold = false;
  std::vector<AtomPattern> unfolded = Dissect(q, no_fold);
  EXPECT_EQ(unfolded.size(), 1u);  // identical patterns dedupe anyway
}

TEST_F(DissectTest, NoFoldKeepsStructurallyDistinctRedundancy) {
  // The second atom is implied by the first but not identical, so only
  // folding can remove it.
  auto q = test::Q("Q() :- Meetings(9, 'Jim'), Meetings(x, y)", schema_);
  EXPECT_EQ(Dissect(q).size(), 1u);
  DissectOptions no_fold;
  no_fold.fold = false;
  EXPECT_EQ(Dissect(q, no_fold).size(), 2u);
}

TEST_F(DissectTest, DistinguishedVarsStayDistinguished) {
  auto q = test::Q("Q(x, w) :- Meetings(x, y), Contacts(y, w, z)", schema_);
  std::vector<AtomPattern> atoms = Dissect(q);
  ASSERT_EQ(atoms.size(), 2u);
  // x distinguished (head), y promoted (join), w distinguished (head),
  // z existential.
  EXPECT_EQ(atoms[0], test::P("A(x, y) :- Meetings(x, y)", schema_));
  EXPECT_EQ(atoms[1], test::P("B(y, w) :- Contacts(y, w, z)", schema_));
}

TEST_F(DissectTest, VariableSharedWithinOneAtomNotPromoted) {
  // The repeated variable z appears in only one atom: no promotion.
  auto q = test::Q("Q() :- Meetings(z, z)", schema_);
  std::vector<AtomPattern> atoms = Dissect(q);
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_FALSE(atoms[0].HasDistinguished());
}

TEST_F(DissectTest, ThreeWayJoinPromotesAllJoinVars) {
  auto q = test::Q(
      "Q(t) :- Meetings(t, p), Contacts(p, e, r), Meetings(t2, p)", schema_);
  std::vector<AtomPattern> atoms = Dissect(q);
  // Folding drops Meetings(t2, p) (retracts onto Meetings(t, p)); p is
  // shared by the remaining two atoms and promoted.
  ASSERT_EQ(atoms.size(), 2u);
  EXPECT_EQ(atoms[0], test::P("A(t, p) :- Meetings(t, p)", schema_));
  EXPECT_EQ(atoms[1], test::P("B(p) :- Contacts(p, e, r)", schema_));
}

TEST_F(DissectTest, DissectAllDeduplicatesAcrossQueries) {
  auto q1 = test::Q("Q(x) :- Meetings(x, y)", schema_);
  auto q2 = test::Q("R(u) :- Meetings(u, v)", schema_);
  std::vector<AtomPattern> atoms = DissectAll({q1, q2});
  EXPECT_EQ(atoms.size(), 1u);
}

TEST_F(DissectTest, DuplicateAtomsWithinQueryDedupe) {
  auto q = test::Q("Q(x) :- Meetings(x, y), Meetings(x, w)", schema_);
  DissectOptions no_fold;
  no_fold.fold = false;
  // Distinct variables but identical pattern after tagging: x promoted in
  // both, y/w existential → same pattern → single output.
  EXPECT_EQ(Dissect(q, no_fold).size(), 1u);
}

}  // namespace
}  // namespace fdc::label
