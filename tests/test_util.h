// Shared fixtures for the test suite: the paper's running-example schema
// (Figure 1), pattern builders, and a seeded random single-atom-view
// generator used by the property suites.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "cq/datalog_parser.h"
#include "cq/pattern.h"
#include "cq/query.h"
#include "cq/schema.h"
#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "label/view_catalog.h"
#include "workload/query_generator.h"

namespace fdc::test {

/// The §7.2 Facebook environment (schema + 37-view catalog), shared by the
/// pipeline/engine equivalence and concurrency suites.
struct FbFixture {
  cq::Schema schema;
  label::ViewCatalog catalog;

  FbFixture() : schema(fb::BuildFacebookSchema()), catalog(&schema) {
    auto added = fb::RegisterFacebookViews(&catalog);
    if (!added.ok()) std::abort();
  }
};

/// Pregenerates `count` §7.2 workload queries (`subqueries` stress factor).
inline std::vector<cq::ConjunctiveQuery> RandomWorkload(
    const cq::Schema* schema, int subqueries, int count, uint64_t seed) {
  workload::GeneratorOptions options;
  options.subqueries = subqueries;
  workload::QueryGenerator generator(schema, options, seed);
  std::vector<cq::ConjunctiveQuery> pool;
  pool.reserve(count);
  for (int i = 0; i < count; ++i) pool.push_back(generator.Next());
  return pool;
}

/// Schema of Figure 1: Meetings(time, person), Contacts(person, email,
/// position).
inline cq::Schema MakePaperSchema() {
  cq::Schema schema;
  auto m = schema.AddRelation("Meetings", {"time", "person"});
  auto c = schema.AddRelation("Contacts", {"person", "email", "position"});
  (void)m;
  (void)c;
  return schema;
}

/// Parses a Datalog view/query, aborting the test on parse failure.
inline cq::ConjunctiveQuery Q(const std::string& text,
                              const cq::Schema& schema) {
  auto result = cq::ParseDatalog(text, schema);
  if (!result.ok()) {
    // GTest-friendly hard failure with the parser message.
    throw std::runtime_error("parse failed: " + result.status().ToString() +
                             " for: " + text);
  }
  return *result;
}

/// Pattern of a single-atom Datalog view.
inline cq::AtomPattern P(const std::string& text, const cq::Schema& schema) {
  auto pattern = cq::AtomPattern::FromQuery(Q(text, schema));
  if (!pattern.ok()) {
    throw std::runtime_error("not single-atom: " + text);
  }
  return *pattern;
}

/// Generates a random single-atom pattern over `relation` with the given
/// arity: positions are constants from a two-value pool or variables drawn
/// from a small class set with random distinguished tags.
inline cq::AtomPattern RandomPattern(Rng* rng, int relation, int arity) {
  const int max_classes = arity;
  std::vector<bool> class_dist(max_classes);
  for (int c = 0; c < max_classes; ++c) class_dist[c] = rng->Chance(0.5);

  cq::AtomPattern p;
  p.relation = relation;
  p.terms.resize(arity);
  for (int pos = 0; pos < arity; ++pos) {
    cq::PatTerm& pt = p.terms[pos];
    if (rng->Chance(0.2)) {
      pt.is_const = true;
      pt.value = rng->Chance(0.5) ? "a" : "b";
    } else {
      pt.is_const = false;
      pt.cls = static_cast<int>(rng->Below(max_classes));
      pt.distinguished = class_dist[pt.cls];
    }
  }
  p.Normalize();
  return p;
}

}  // namespace fdc::test
