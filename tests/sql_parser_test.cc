#include "cq/sql_parser.h"

#include <gtest/gtest.h>

#include "rewriting/containment.h"
#include "test_util.h"

namespace fdc::cq {
namespace {

class SqlParserTest : public ::testing::Test {
 protected:
  Schema schema_ = test::MakePaperSchema();

  ConjunctiveQuery MustParse(const std::string& sql) {
    auto result = ParseSql(sql, schema_);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? *result : ConjunctiveQuery();
  }
};

TEST_F(SqlParserTest, SimpleProjection) {
  ConjunctiveQuery q = MustParse("SELECT time FROM Meetings");
  ConjunctiveQuery expected = test::Q("Q(x) :- Meetings(x, y)", schema_);
  EXPECT_TRUE(rewriting::AreEquivalent(q, expected));
}

TEST_F(SqlParserTest, SelectStar) {
  ConjunctiveQuery q = MustParse("SELECT * FROM Meetings");
  ConjunctiveQuery expected = test::Q("Q(x, y) :- Meetings(x, y)", schema_);
  EXPECT_TRUE(rewriting::AreEquivalent(q, expected));
}

TEST_F(SqlParserTest, WhereConstant) {
  ConjunctiveQuery q =
      MustParse("SELECT time FROM Meetings WHERE person = 'Cathy'");
  ConjunctiveQuery expected = test::Q("Q(x) :- Meetings(x, 'Cathy')", schema_);
  EXPECT_TRUE(rewriting::AreEquivalent(q, expected));
}

TEST_F(SqlParserTest, LiteralOnLeft) {
  ConjunctiveQuery q =
      MustParse("SELECT time FROM Meetings WHERE 'Cathy' = person");
  ConjunctiveQuery expected = test::Q("Q(x) :- Meetings(x, 'Cathy')", schema_);
  EXPECT_TRUE(rewriting::AreEquivalent(q, expected));
}

TEST_F(SqlParserTest, ExplicitJoin) {
  ConjunctiveQuery q = MustParse(
      "SELECT m.time FROM Meetings m JOIN Contacts c ON m.person = c.person "
      "WHERE c.position = 'Intern'");
  ConjunctiveQuery expected =
      test::Q("Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')", schema_);
  EXPECT_TRUE(rewriting::AreEquivalent(q, expected));
}

TEST_F(SqlParserTest, CommaJoinWithWhere) {
  ConjunctiveQuery q = MustParse(
      "SELECT m.time FROM Meetings m, Contacts c WHERE m.person = c.person "
      "AND c.position = 'Intern'");
  ConjunctiveQuery expected =
      test::Q("Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')", schema_);
  EXPECT_TRUE(rewriting::AreEquivalent(q, expected));
}

TEST_F(SqlParserTest, InnerJoinKeyword) {
  ConjunctiveQuery q = MustParse(
      "SELECT m.time FROM Meetings m INNER JOIN Contacts c "
      "ON m.person = c.person");
  EXPECT_EQ(q.size(), 2);
}

TEST_F(SqlParserTest, QualifiedStar) {
  ConjunctiveQuery q = MustParse(
      "SELECT c.* FROM Meetings m JOIN Contacts c ON m.person = c.person");
  EXPECT_EQ(q.head().size(), 3u);
}

TEST_F(SqlParserTest, AsAlias) {
  ConjunctiveQuery q =
      MustParse("SELECT m.time FROM Meetings AS m WHERE m.person = 'Bob'");
  ConjunctiveQuery expected = test::Q("Q(x) :- Meetings(x, 'Bob')", schema_);
  EXPECT_TRUE(rewriting::AreEquivalent(q, expected));
}

TEST_F(SqlParserTest, SelfJoin) {
  ConjunctiveQuery q = MustParse(
      "SELECT a.time, b.time FROM Meetings a, Meetings b "
      "WHERE a.person = b.person");
  ConjunctiveQuery expected =
      test::Q("Q(t1, t2) :- Meetings(t1, p), Meetings(t2, p)", schema_);
  EXPECT_TRUE(rewriting::AreEquivalent(q, expected));
}

TEST_F(SqlParserTest, SelectingConstantBoundColumnDropsIt) {
  // Selecting a column fixed by the query text reveals nothing beyond the
  // rest of the query; the head keeps only genuine variables.
  ConjunctiveQuery q =
      MustParse("SELECT time, person FROM Meetings WHERE person = 'Bob'");
  EXPECT_EQ(q.head().size(), 1u);
}

TEST_F(SqlParserTest, ContradictoryConstantsRejected) {
  auto result = ParseSql(
      "SELECT time FROM Meetings WHERE person = 'A' AND person = 'B'",
      schema_);
  EXPECT_FALSE(result.ok());
}

TEST_F(SqlParserTest, TransitiveConstantConflictRejected) {
  auto result = ParseSql(
      "SELECT a.time FROM Meetings a, Meetings b WHERE a.person = b.person "
      "AND a.person = 'A' AND b.person = 'B'",
      schema_);
  EXPECT_FALSE(result.ok());
}

TEST_F(SqlParserTest, InequalityUnsupported) {
  auto result = ParseSql(
      "SELECT time FROM Meetings WHERE person <> 'Bob'", schema_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST_F(SqlParserTest, UnknownTableRejected) {
  EXPECT_FALSE(ParseSql("SELECT x FROM Nope", schema_).ok());
}

TEST_F(SqlParserTest, UnknownColumnRejected) {
  EXPECT_FALSE(ParseSql("SELECT nope FROM Meetings", schema_).ok());
}

TEST_F(SqlParserTest, AmbiguousColumnRejected) {
  auto result = ParseSql(
      "SELECT time FROM Meetings a, Meetings b WHERE a.person = b.person",
      schema_);
  EXPECT_FALSE(result.ok());
}

TEST_F(SqlParserTest, DuplicateAliasRejected) {
  EXPECT_FALSE(
      ParseSql("SELECT m.time FROM Meetings m, Contacts m", schema_).ok());
}

TEST_F(SqlParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(ParseSql("SELECT time FROM Meetings;", schema_).ok());
}

TEST_F(SqlParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseSql("SELECT time FROM Meetings LIMIT 5", schema_).ok());
}

TEST_F(SqlParserTest, KeywordsCaseInsensitive) {
  EXPECT_TRUE(
      ParseSql("select time from Meetings where person = 'X'", schema_).ok());
}

}  // namespace
}  // namespace fdc::cq
