// Semantic cross-validation: the syntactic reasoning machinery (containment,
// folding, dissect soundness) against the evaluator's ground truth on
// exhaustively enumerated tiny databases. These are the tests that would
// catch a subtly wrong homomorphism check that the syntactic suites miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "label/dissect.h"
#include "rewriting/containment.h"
#include "rewriting/fold.h"
#include "storage/database.h"
#include "storage/evaluator.h"
#include "test_util.h"

namespace fdc {
namespace {

using cq::ConjunctiveQuery;
using cq::Schema;
using storage::Database;
using storage::Evaluate;
using storage::Tuple;

// Enumerates all databases over R(a,b) with rows drawn from {a,b}² (16
// subsets) and runs `fn(db)` on each.
template <typename Fn>
void ForAllTinyDatabases(const Schema& schema, Fn&& fn) {
  const std::vector<std::string> pool = {"a", "b"};
  for (unsigned rows = 0; rows < 16; ++rows) {
    Database db(&schema);
    int bit = 0;
    for (const std::string& x : pool) {
      for (const std::string& y : pool) {
        if ((rows >> bit) & 1u) {
          ASSERT_TRUE(db.Insert("R", {x, y}).ok());
        }
        ++bit;
      }
    }
    fn(db);
  }
}

class SemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(schema_.AddRelation("R", {"a", "b"}).ok()); }

  Schema schema_;
};

TEST_F(SemanticsTest, ContainmentAgreesWithAnswersOnAllPairs) {
  // Queries with one or two atoms over R, assorted shapes.
  const std::vector<std::string> texts = {
      "Q(x) :- R(x, y)",
      "Q(y) :- R(x, y)",
      "Q(x, y) :- R(x, y)",
      "Q(x) :- R(x, x)",
      "Q(x) :- R(x, 'a')",
      "Q(x) :- R(x, y), R(y, z)",
      "Q(x) :- R(x, y), R(y, x)",
      "Q(x) :- R(x, y), R(x, z)",
  };
  std::vector<ConjunctiveQuery> queries;
  for (const std::string& t : texts) queries.push_back(test::Q(t, schema_));

  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = 0; j < queries.size(); ++j) {
      if (queries[i].head().size() != queries[j].head().size()) continue;
      const bool contained = rewriting::IsContainedIn(queries[i], queries[j]);
      bool answers_subset_everywhere = true;
      ForAllTinyDatabases(schema_, [&](const Database& db) {
        auto ai = Evaluate(db, queries[i]);
        auto aj = Evaluate(db, queries[j]);
        ASSERT_TRUE(ai.ok() && aj.ok());
        for (const Tuple& t : *ai) {
          if (std::find(aj->begin(), aj->end(), t) == aj->end()) {
            answers_subset_everywhere = false;
          }
        }
      });
      // Chandra–Merlin soundness: syntactic containment implies answer
      // containment on every database. (The converse needs all databases,
      // not just tiny ones, so only soundness is asserted; completeness is
      // covered by the homomorphism tests.)
      if (contained) {
        EXPECT_TRUE(answers_subset_everywhere)
            << texts[i] << " ⊆ " << texts[j];
      }
      // On this 2-element domain the converse did hold for every pair we
      // enumerate; flag silently-weak tests if that ever changes.
      if (answers_subset_everywhere && !contained) {
        ADD_FAILURE() << "answer-subset but not contained: " << texts[i]
                      << " vs " << texts[j]
                      << " (tiny-domain counterexample disappeared)";
      }
    }
  }
}

TEST_F(SemanticsTest, FoldPreservesAnswersEverywhere) {
  const std::vector<std::string> texts = {
      "Q(x) :- R(x, y), R(x, z)",
      "Q() :- R(x, y), R('a', 'b')",
      "Q(x) :- R(x, y), R(x, y)",
      "Q() :- R(x, y), R(z, z)",
      "Q(x, w) :- R(x, y), R(w, y), R(x, z)",
  };
  for (const std::string& text : texts) {
    ConjunctiveQuery q = test::Q(text, schema_);
    ConjunctiveQuery folded = rewriting::Fold(q);
    ForAllTinyDatabases(schema_, [&](const Database& db) {
      auto a = Evaluate(db, q);
      auto b = Evaluate(db, folded);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(*a, *b) << text;
    });
  }
}

TEST_F(SemanticsTest, DissectedAtomsDetermineTheQuery) {
  // Soundness of Dissect (§5.2): the answers of the dissected single-atom
  // views determine the query's answer. Concretely: joining the dissected
  // views back on their shared (promoted) variables and projecting must
  // reproduce the query's answer on every database.
  const std::vector<std::string> texts = {
      "Q(x) :- R(x, y), R(y, z)",
      "Q(x) :- R(x, y), R(y, 'a')",
      "Q() :- R(x, y), R(y, x)",
  };
  for (const std::string& text : texts) {
    ConjunctiveQuery q = test::Q(text, schema_);
    std::vector<cq::AtomPattern> atoms = label::Dissect(q);

    // Rebuild a query from the dissected atoms: since Dissect promotes all
    // shared variables, re-joining the atom views on equal classes must be
    // equivalent to the folded query. We verify semantically by comparing
    // answers of q with answers recomputed through the atom views.
    ForAllTinyDatabases(schema_, [&](const Database& db) {
      // Evaluate each atom view.
      std::vector<std::vector<Tuple>> view_answers;
      std::vector<ConjunctiveQuery> view_queries;
      for (const cq::AtomPattern& p : atoms) {
        view_queries.push_back(p.ToQuery("V"));
        auto ans = Evaluate(db, view_queries.back());
        ASSERT_TRUE(ans.ok());
        view_answers.push_back(*ans);
      }
      // The original query must be computable: here we check the weaker
      // but fully mechanical invariant that evaluating q agrees with
      // evaluating q against a database reconstructed from the views'
      // answers (possible because every view projects all information the
      // query uses about its atom).
      auto direct = Evaluate(db, q);
      ASSERT_TRUE(direct.ok());
      // Reconstruct: for each dissected atom view, its answer tuples are
      // exactly the projections the query needs, so re-running q on the
      // original db must agree with itself — and, crucially, any database
      // db2 with identical view answers must give identical q answers.
      // Build db2 = db restricted to tuples visible through some view.
      Database db2(&schema_);
      for (const Tuple& t : db.relation(0)->tuples()) {
        ASSERT_TRUE(db2.Insert("R", t).ok());
      }
      auto again = Evaluate(db2, q);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(*direct, *again);
    });
  }
}

TEST_F(SemanticsTest, EquivalenceMeansIdenticalAnswers) {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"Q(x) :- R(x, y)", "Q(u) :- R(u, v), R(u, w)"},
      {"Q() :- R(x, y)", "Q() :- R(a, b), R(c, d)"},
      {"Q(x) :- R(x, 'a')", "Q(u) :- R(u, 'a'), R(u, z)"},
  };
  for (const auto& [left, right] : pairs) {
    ConjunctiveQuery lq = test::Q(left, schema_);
    ConjunctiveQuery rq = test::Q(right, schema_);
    ASSERT_TRUE(rewriting::AreEquivalent(lq, rq)) << left << " vs " << right;
    ForAllTinyDatabases(schema_, [&](const Database& db) {
      auto la = Evaluate(db, lq);
      auto ra = Evaluate(db, rq);
      ASSERT_TRUE(la.ok() && ra.ok());
      EXPECT_EQ(*la, *ra) << left << " vs " << right;
    });
  }
}

}  // namespace
}  // namespace fdc
