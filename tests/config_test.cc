#include "config/config.h"

#include <gtest/gtest.h>

#include "label/pipeline.h"
#include "policy/reference_monitor.h"
#include "test_util.h"

namespace fdc::config {
namespace {

constexpr const char* kAliceConfig = R"(
# Alice's calendar deployment (Figure 1)
relation Meetings(time, person)
relation Contacts(person, email, position)

view meetings_full: V(x, y) :- Meetings(x, y)
view meeting_times: V(x) :- Meetings(x, y)
view contacts_full: V(x, y, z) :- Contacts(x, y, z)

policy alice {
  partition meetings_side: meetings_full, meeting_times
  partition contacts_side: contacts_full
}

policy open {
  partition all: meetings_full, contacts_full
}
)";

TEST(ConfigTest, ParsesFullDocument) {
  auto config = ParseConfig(kAliceConfig);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ((*config)->schema->NumRelations(), 2);
  EXPECT_EQ((*config)->catalog->size(), 3);
  EXPECT_EQ((*config)->policies.size(), 2u);
  const policy::SecurityPolicy* alice = (*config)->FindPolicy("alice");
  ASSERT_NE(alice, nullptr);
  EXPECT_EQ(alice->num_partitions(), 2);
  EXPECT_EQ((*config)->FindPolicy("nope"), nullptr);
}

TEST(ConfigTest, ParsedPolicyEnforces) {
  auto config = ParseConfig(kAliceConfig);
  ASSERT_TRUE(config.ok());
  DisclosureConfig& c = **config;
  label::LabelerPipeline pipeline(c.catalog.get());
  policy::ReferenceMonitor monitor(c.FindPolicy("alice"));
  policy::PrincipalState state = monitor.InitialState();
  EXPECT_TRUE(monitor.Submit(
      &state,
      pipeline.LabelPacked(test::Q("Q(x) :- Meetings(x, y)", *c.schema))));
  EXPECT_FALSE(monitor.Submit(
      &state,
      pipeline.LabelPacked(test::Q("Q(x) :- Contacts(x, y, z)", *c.schema))));
}

TEST(ConfigTest, RoundTrip) {
  auto config = ParseConfig(kAliceConfig);
  ASSERT_TRUE(config.ok());
  const std::string written = WriteConfig(**config);
  auto reparsed = ParseConfig(written);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << written;
  EXPECT_EQ((*reparsed)->schema->NumRelations(), 2);
  EXPECT_EQ((*reparsed)->catalog->size(), 3);
  EXPECT_EQ((*reparsed)->policies.size(), 2u);
  // Semantic equality of views: identical patterns.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*config)->catalog->view(i).pattern,
              (*reparsed)->catalog->view(i).pattern)
        << (*config)->catalog->view(i).name;
  }
  // Idempotent writer.
  EXPECT_EQ(written, WriteConfig(**reparsed));
}

TEST(ConfigTest, CommentsAndBlankLines) {
  auto config = ParseConfig(
      "# leading comment\n\nrelation R(a, b)  # trailing comment\n"
      "view v: V(x) :- R(x, y)\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ((*config)->catalog->size(), 1);
}

TEST(ConfigTest, ErrorsCarryLineNumbers) {
  auto config = ParseConfig("relation R(a, b)\nbogus directive\n");
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("line 2"), std::string::npos);
}

TEST(ConfigTest, RejectsUnknownViewInPartition) {
  auto config = ParseConfig(
      "relation R(a, b)\nview v: V(x) :- R(x, y)\n"
      "policy p {\n  partition w: nonexistent\n}\n");
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("nonexistent"), std::string::npos);
}

TEST(ConfigTest, RejectsUnterminatedPolicy) {
  auto config = ParseConfig(
      "relation R(a, b)\nview v: V(x) :- R(x, y)\n"
      "policy p {\n  partition w: v\n");
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("unterminated"), std::string::npos);
}

TEST(ConfigTest, RejectsEmptyPolicy) {
  auto config = ParseConfig(
      "relation R(a, b)\nview v: V(x) :- R(x, y)\npolicy p {\n}\n");
  EXPECT_FALSE(config.ok());
}

TEST(ConfigTest, RejectsDuplicatePolicy) {
  auto config = ParseConfig(
      "relation R(a, b)\nview v: V(x) :- R(x, y)\n"
      "policy p {\n  partition w: v\n}\n"
      "policy p {\n  partition w: v\n}\n");
  EXPECT_FALSE(config.ok());
}

TEST(ConfigTest, RejectsMalformedRelation) {
  EXPECT_FALSE(ParseConfig("relation R a, b\n").ok());
  EXPECT_FALSE(ParseConfig("relation R()\n").ok());
  EXPECT_FALSE(ParseConfig("relation R(a,,b)\n").ok());
}

TEST(ConfigTest, RejectsBadViewDefinition) {
  // Unknown relation inside the Datalog body.
  auto config = ParseConfig("relation R(a, b)\nview v: V(x) :- S(x)\n");
  EXPECT_FALSE(config.ok());
  // Multi-atom security views are rejected by the catalog.
  auto multi = ParseConfig(
      "relation R(a, b)\nview v: V(x) :- R(x, y), R(y, z)\n");
  EXPECT_FALSE(multi.ok());
}

TEST(ConfigTest, RejectsUnmatchedBrace) {
  EXPECT_FALSE(ParseConfig("relation R(a, b)\n}\n").ok());
}

TEST(ConfigTest, MissingColonInView) {
  EXPECT_FALSE(ParseConfig("relation R(a, b)\nview v V(x) :- R(x, y)\n").ok());
}

TEST(ConfigTest, FacebookScaleConfigRoundTrips) {
  // Build a config programmatically from the fb module and round-trip it.
  auto config = std::make_unique<DisclosureConfig>();
  config->schema = std::make_unique<cq::Schema>();
  *config->schema = fdc::test::MakePaperSchema();
  config->catalog =
      std::make_unique<label::ViewCatalog>(config->schema.get());
  ASSERT_TRUE(
      config->catalog->AddViewText("v1", "V(x, y) :- Meetings(x, y)").ok());
  auto policy = policy::SecurityPolicy::Compile(
      *config->catalog, {{"p0", {0}}});
  ASSERT_TRUE(policy.ok());
  config->policies.emplace_back("only", std::move(*policy));

  const std::string written = WriteConfig(*config);
  auto reparsed = ParseConfig(written);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << written;
  EXPECT_EQ(WriteConfig(**reparsed), written);
}

}  // namespace
}  // namespace fdc::config
