#include <gtest/gtest.h>

#include <memory>

#include "label/pipeline.h"
#include "policy/cumulative.h"
#include "policy/explain.h"
#include "policy/reference_monitor.h"
#include "test_util.h"

namespace fdc::policy {
namespace {

using cq::Schema;

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = test::MakePaperSchema();
    catalog_ = std::make_unique<label::ViewCatalog>(&schema_);
    ASSERT_TRUE(
        catalog_->AddViewText("meetings_full", "V(x, y) :- Meetings(x, y)")
            .ok());
    ASSERT_TRUE(
        catalog_->AddViewText("meeting_times", "V(x) :- Meetings(x, y)").ok());
    ASSERT_TRUE(
        catalog_->AddViewText("contacts_full", "V(x, y, z) :- Contacts(x, y, z)")
            .ok());
    pipeline_ = std::make_unique<label::LabelerPipeline>(catalog_.get());
    auto policy = SecurityPolicy::Compile(
        *catalog_,
        {{"meetings_side", {catalog_->FindByName("meetings_full")->id}},
         {"contacts_side", {catalog_->FindByName("contacts_full")->id}}});
    ASSERT_TRUE(policy.ok());
    policy_ = std::make_unique<SecurityPolicy>(std::move(policy).value());
  }

  label::DisclosureLabel Label(const std::string& text) {
    return pipeline_->LabelPacked(test::Q(text, schema_));
  }

  Schema schema_;
  std::unique_ptr<label::ViewCatalog> catalog_;
  std::unique_ptr<label::LabelerPipeline> pipeline_;
  std::unique_ptr<SecurityPolicy> policy_;
};

TEST_F(ExplainTest, AcceptedQueryExplained) {
  Explanation e = ExplainDecision(*policy_, *catalog_,
                                  Label("Q(x) :- Meetings(x, y)"),
                                  policy_->AllPartitionsMask());
  EXPECT_TRUE(e.accepted);
  ASSERT_EQ(e.partitions.size(), 2u);
  EXPECT_TRUE(e.partitions[0].allowed);
  EXPECT_FALSE(e.partitions[1].allowed);
  EXPECT_EQ(e.partitions[1].blocking_atom, 0);
  // Adding meetings_full (or meeting_times) to contacts_side would unblock.
  EXPECT_EQ(e.partitions[1].covering_views,
            (std::vector<std::string>{"meetings_full", "meeting_times"}));
  EXPECT_NE(e.ToString().find("DECISION: answer"), std::string::npos);
}

TEST_F(ExplainTest, WallLossReported) {
  // Principal already locked to contacts_side (bit 0 cleared).
  Explanation e = ExplainDecision(*policy_, *catalog_,
                                  Label("Q(x) :- Meetings(x, y)"),
                                  /*consistent=*/0b10);
  EXPECT_FALSE(e.accepted);
  EXPECT_TRUE(e.partitions[0].lost_earlier);
  EXPECT_FALSE(e.partitions[1].allowed);
  EXPECT_NE(e.ToString().find("already inconsistent"), std::string::npos);
}

TEST_F(ExplainTest, TopLabelExplained) {
  // No view over Contacts emails only? contacts_full covers everything, so
  // craft a catalog-less label.
  label::DisclosureLabel top;
  top.MarkTop();
  Explanation e =
      ExplainDecision(*policy_, *catalog_, top, policy_->AllPartitionsMask());
  EXPECT_FALSE(e.accepted);
  EXPECT_TRUE(e.label_is_top);
  EXPECT_NE(e.ToString().find("⊤"), std::string::npos);
}

TEST_F(ExplainTest, ExplanationMatchesMonitorDecision) {
  ReferenceMonitor monitor(policy_.get());
  Rng rng(4242);
  const std::vector<std::string> pool = {
      "Q(x) :- Meetings(x, y)", "Q(x, y) :- Meetings(x, y)",
      "Q(x) :- Contacts(x, y, z)", "Q(z) :- Contacts(x, y, z)",
      "Q(x) :- Meetings(x, y), Contacts(y, e, p)"};
  for (int run = 0; run < 10; ++run) {
    PrincipalState state = monitor.InitialState();
    for (int step = 0; step < 8; ++step) {
      label::DisclosureLabel label = Label(pool[rng.Below(pool.size())]);
      Explanation e =
          ExplainDecision(*policy_, *catalog_, label, state.consistent);
      EXPECT_EQ(e.accepted, monitor.Submit(&state, label));
    }
  }
}

// Regression: wide blocking atoms are numbered after the packed ones in
// the documented *label order* (packed atoms #0..size()-1, wide atoms from
// #size()), flagged as wide, and rendered as such — on a mixed label the
// old "query atom #N" wording implied the query's dissected-atom order,
// which the split packed/wide storage does not preserve.
TEST(ExplainWideTest, MixedPackedAndWideNumberingIsStable) {
  cq::Schema schema;
  (void)schema.AddRelation("Meetings", {"time", "person"});
  (void)schema.AddRelation("Wide", {"a", "b"});
  label::ViewCatalog catalog(&schema);
  ASSERT_TRUE(
      catalog.AddViewText("meetings_full", "V(x, y) :- Meetings(x, y)").ok());
  // 33 views over one relation: one past the packed capacity, so Wide
  // atoms ride the multi-word representation.
  for (int i = 0; i < 33; ++i) {
    ASSERT_TRUE(catalog
                    .AddViewText("w" + std::to_string(i),
                                 "V(x, y) :- Wide(x, y)")
                    .ok());
  }
  label::LabelingPipeline pipeline(&catalog);
  const label::DisclosureLabel label = pipeline.Label(
      test::Q("Q(x, y, u, v) :- Meetings(x, y), Wide(u, v)", schema));
  ASSERT_EQ(label.size(), 1);                 // Meetings: packed
  ASSERT_EQ(label.wide_atoms().size(), 1u);   // Wide: 33 views -> wide

  auto policy = SecurityPolicy::Compile(
      catalog, {{"meetings_side", {catalog.FindByName("meetings_full")->id}},
                {"wide_w0", {catalog.FindByName("w0")->id}}});
  ASSERT_TRUE(policy.ok());

  Explanation e = ExplainDecision(*policy, catalog, label,
                                  policy->AllPartitionsMask());
  EXPECT_FALSE(e.accepted);
  ASSERT_EQ(e.partitions.size(), 2u);
  // meetings_side covers the packed atom; the wide atom blocks it at label
  // index size() + 0 = 1.
  EXPECT_FALSE(e.partitions[0].allowed);
  EXPECT_EQ(e.partitions[0].blocking_atom, label.size());
  EXPECT_TRUE(e.partitions[0].blocking_atom_wide);
  EXPECT_EQ(e.partitions[0].covering_views.size(), 33u);
  // wide_w0 covers the wide atom; the packed atom blocks it at index 0.
  EXPECT_FALSE(e.partitions[1].allowed);
  EXPECT_EQ(e.partitions[1].blocking_atom, 0);
  EXPECT_FALSE(e.partitions[1].blocking_atom_wide);
  const std::string rendered = e.ToString();
  EXPECT_NE(rendered.find("blocked by label atom #1 (wide)"),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("blocked by label atom #0 ("), std::string::npos)
      << rendered;
}

// ---- CumulativeTracker -----------------------------------------------------

TEST_F(ExplainTest, TrackerAccumulatesLub) {
  CumulativeTracker tracker;
  label::DisclosureLabel times = Label("Q(x) :- Meetings(x, y)");
  label::DisclosureLabel full = Label("Q(x, y) :- Meetings(x, y)");

  EXPECT_TRUE(tracker.WouldIncrease(times));
  tracker.RecordAnswered(times);
  EXPECT_EQ(tracker.answered_queries(), 1);
  // The same query again adds nothing.
  EXPECT_FALSE(tracker.WouldIncrease(times));
  // The full table is strictly more.
  EXPECT_TRUE(tracker.WouldIncrease(full));
  tracker.RecordAnswered(full);
  EXPECT_FALSE(tracker.WouldIncrease(times));
  EXPECT_FALSE(tracker.WouldIncrease(full));
}

TEST_F(ExplainTest, TrackerThresholds) {
  CumulativeTracker tracker;
  // Threshold: everything meetings_full can reveal.
  label::DisclosureLabel threshold = Label("Q(x, y) :- Meetings(x, y)");
  tracker.RecordAnswered(Label("Q(x) :- Meetings(x, y)"));
  EXPECT_TRUE(tracker.WithinThreshold(threshold));
  tracker.RecordAnswered(Label("Q(x) :- Contacts(x, y, z)"));
  EXPECT_FALSE(tracker.WithinThreshold(threshold));
}

TEST_F(ExplainTest, TrackerDescribesAtoms) {
  CumulativeTracker tracker;
  tracker.RecordAnswered(Label("Q(x) :- Meetings(x, y)"));
  auto description = tracker.DescribeAtoms(*catalog_);
  ASSERT_EQ(description.size(), 1u);
  EXPECT_EQ(description[0],
            (std::vector<std::string>{"meetings_full", "meeting_times"}));
}

}  // namespace
}  // namespace fdc::policy
