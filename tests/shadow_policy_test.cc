// Shadow-policy mode (DisclosureEngine::SetShadowPolicy): the staged
// candidate must be decision-invisible — an engine with a shadow policy
// returns bit-identical decisions to one without, on the same stream —
// while its divergence counters match an oracle engine that runs the
// candidate as its *live* policy over the same per-principal streams.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "artifact/policy_blob.h"
#include "engine/disclosure_engine.h"
#include "engine/stats_json.h"
#include "policy/policy.h"
#include "test_util.h"
#include "workload/policy_generator.h"

namespace fdc {
namespace {

using test::FbFixture;
using test::RandomWorkload;

policy::SecurityPolicy GeneratePolicy(const label::ViewCatalog* catalog,
                                      uint64_t seed) {
  workload::PolicyOptions options;
  options.max_partitions = 5;
  options.max_elements_per_partition = 15;
  return workload::PolicyGenerator(catalog, options, seed).Next();
}

TEST(ShadowPolicyTest, DecisionInvisibleUnderRandomWorkload) {
  FbFixture fb;
  // Same live policy in both engines; one also stages a shadow candidate.
  engine::DisclosureEngine plain(/*db=*/nullptr, &fb.catalog,
                                 GeneratePolicy(&fb.catalog, 5));
  engine::DisclosureEngine shadowed(/*db=*/nullptr, &fb.catalog,
                                    GeneratePolicy(&fb.catalog, 5));
  shadowed.SetShadowPolicy(GeneratePolicy(&fb.catalog, 1234), "candidate");
  ASSERT_TRUE(shadowed.ShadowEnabled());

  const auto pool = RandomWorkload(&fb.schema, 2, 600, 0x5ad0ULL);
  for (size_t i = 0; i < pool.size(); ++i) {
    const std::string principal = "app-" + std::to_string(i % 9);
    EXPECT_EQ(plain.Submit(principal, pool[i]),
              shadowed.Submit(principal, pool[i]))
        << "query " << i;
  }
  // Live counters match too: shadow evaluation must not leak into them.
  const auto a = plain.Stats();
  const auto b = shadowed.Stats();
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.refused, b.refused);
  EXPECT_EQ(b.shadow.evaluated, pool.size());
  EXPECT_EQ(b.shadow.evaluated,
            b.shadow.agree + b.shadow.shadow_stricter + b.shadow.shadow_looser);
}

TEST(ShadowPolicyTest, DivergenceCountsMatchOracleEngine) {
  FbFixture fb;
  const policy::SecurityPolicy live = GeneratePolicy(&fb.catalog, 5);
  const policy::SecurityPolicy candidate = GeneratePolicy(&fb.catalog, 1234);

  engine::DisclosureEngine shadowed(/*db=*/nullptr, &fb.catalog, live);
  shadowed.SetShadowPolicy(candidate, "candidate");
  // Oracle: the candidate as the live policy of an independent engine fed
  // the identical per-principal streams — its decisions are exactly what
  // shadow evaluation should have computed.
  engine::DisclosureEngine oracle(/*db=*/nullptr, &fb.catalog, candidate);
  engine::DisclosureEngine live_only(/*db=*/nullptr, &fb.catalog, live);

  const auto pool = RandomWorkload(&fb.schema, 2, 600, 0xd143ULL);
  uint64_t want_agree = 0, want_stricter = 0, want_looser = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    const std::string principal = "app-" + std::to_string(i % 9);
    const bool live_decision = shadowed.Submit(principal, pool[i]);
    EXPECT_EQ(live_decision, live_only.Submit(principal, pool[i]));
    const bool shadow_decision = oracle.Submit(principal, pool[i]);
    if (live_decision == shadow_decision) {
      ++want_agree;
    } else if (live_decision) {
      ++want_stricter;
    } else {
      ++want_looser;
    }
  }

  const auto stats = shadowed.Stats();
  EXPECT_TRUE(stats.shadow.enabled);
  EXPECT_EQ(stats.shadow.policy_name, "candidate");
  EXPECT_EQ(stats.shadow.evaluated, pool.size());
  EXPECT_EQ(stats.shadow.agree, want_agree);
  EXPECT_EQ(stats.shadow.shadow_stricter, want_stricter);
  EXPECT_EQ(stats.shadow.shadow_looser, want_looser);
  // The two seeds genuinely diverge — a vacuous all-agree run would prove
  // nothing about the per-direction counters.
  EXPECT_GT(want_stricter + want_looser, 0u);
}

TEST(ShadowPolicyTest, BatchAndCoalescedPathsCountShadowDecisions) {
  FbFixture fb;
  engine::DisclosureEngine engine(/*db=*/nullptr, &fb.catalog,
                                  GeneratePolicy(&fb.catalog, 5));
  engine.SetShadowPolicy(GeneratePolicy(&fb.catalog, 1234), "candidate");
  const auto pool = RandomWorkload(&fb.schema, 2, 120, 0xbadcULL);

  engine.SubmitBatch("batch-app", std::span(pool.data(), 40));

  std::vector<engine::DisclosureEngine::SubmitRequest> requests;
  for (size_t i = 40; i < 120; ++i) {
    requests.push_back({i % 2 == 0 ? "even-app" : "odd-app", &pool[i]});
  }
  std::vector<bool> decisions;
  engine.SubmitCoalesced(requests, &decisions);
  ASSERT_EQ(decisions.size(), 80u);

  const auto stats = engine.Stats();
  EXPECT_EQ(stats.shadow.evaluated, 120u);
  EXPECT_EQ(stats.shadow.evaluated, stats.shadow.agree +
                                        stats.shadow.shadow_stricter +
                                        stats.shadow.shadow_looser);
}

TEST(ShadowPolicyTest, ClearStopsEvaluationAndKeepsCounters) {
  FbFixture fb;
  engine::DisclosureEngine engine(/*db=*/nullptr, &fb.catalog,
                                  GeneratePolicy(&fb.catalog, 5));
  engine.SetShadowPolicy(GeneratePolicy(&fb.catalog, 1234), "candidate");
  const auto pool = RandomWorkload(&fb.schema, 2, 50, 0xc1eaULL);
  for (const auto& q : pool) (void)engine.Submit("app", q);
  const uint64_t evaluated = engine.Stats().shadow.evaluated;
  EXPECT_EQ(evaluated, pool.size());

  engine.ClearShadowPolicy();
  EXPECT_FALSE(engine.ShadowEnabled());
  for (const auto& q : pool) (void)engine.Submit("app", q);
  const auto stats = engine.Stats();
  EXPECT_EQ(stats.shadow.evaluated, evaluated);  // no new evaluations
  EXPECT_FALSE(stats.shadow.enabled);
  EXPECT_TRUE(stats.shadow.policy_name.empty());
}

TEST(ShadowPolicyTest, ReplacingShadowResetsItsPrincipalState) {
  FbFixture fb;
  const policy::SecurityPolicy candidate = GeneratePolicy(&fb.catalog, 1234);
  engine::DisclosureEngine engine(/*db=*/nullptr, &fb.catalog,
                                  GeneratePolicy(&fb.catalog, 5));
  const uint64_t first = engine.SetShadowPolicy(candidate, "one");
  const auto pool = RandomWorkload(&fb.schema, 2, 100, 0x4e57ULL);
  for (const auto& q : pool) (void)engine.Submit("app", q);

  // Re-staging the same candidate restarts its per-principal narrowing:
  // replaying the stream yields the same shadow decisions as the first
  // pass (oracle check), not decisions against already-narrowed state.
  const uint64_t second = engine.SetShadowPolicy(candidate, "two");
  EXPECT_GT(second, first);
  engine::DisclosureEngine oracle(/*db=*/nullptr, &fb.catalog, candidate);
  // The live engine's state has narrowed, so compute expectations per
  // decision as the replay happens; the shadow side must behave like the
  // fresh oracle, not like a continuation of the first pass's narrowing.
  const auto before = engine.Stats().shadow;
  uint64_t want_agree = 0, want_stricter = 0, want_looser = 0;
  for (const auto& q : pool) {
    const bool live_decision = engine.Submit("app", q);
    const bool shadow_decision = oracle.Submit("app", q);
    if (live_decision == shadow_decision) {
      ++want_agree;
    } else if (live_decision) {
      ++want_stricter;
    } else {
      ++want_looser;
    }
  }
  const auto stats = engine.Stats();
  EXPECT_EQ(stats.shadow.policy_name, "two");
  EXPECT_EQ(stats.shadow.evaluated - before.evaluated, pool.size());
  EXPECT_EQ(stats.shadow.agree - before.agree, want_agree);
  EXPECT_EQ(stats.shadow.shadow_stricter - before.shadow_stricter,
            want_stricter);
  EXPECT_EQ(stats.shadow.shadow_looser - before.shadow_looser, want_looser);
}

TEST(ShadowPolicyTest, BlobStagedShadowUsesArtifactName) {
  FbFixture fb;
  artifact::PolicyBlobMeta meta;
  meta.name = "staged-from-blob";
  Result<std::vector<uint8_t>> bytes = artifact::CompilePolicyBlob(
      fb.catalog, GeneratePolicy(&fb.catalog, 1234), meta);
  ASSERT_TRUE(bytes.ok());
  Result<artifact::LoadedPolicyBlob> blob = artifact::LoadPolicyBlob(*bytes);
  ASSERT_TRUE(blob.ok());

  engine::DisclosureEngine engine(/*db=*/nullptr, &fb.catalog,
                                  GeneratePolicy(&fb.catalog, 5));
  Result<uint64_t> epoch = engine.SetShadowPolicy(*blob);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_TRUE(engine.ShadowEnabled());
  const auto stats = engine.Stats();
  EXPECT_EQ(stats.shadow.policy_name, "staged-from-blob");
  EXPECT_EQ(stats.shadow.epoch, *epoch);
  // And the whole document stays valid JSON with the name in place.
  const std::string json = engine::StatsToJson(stats);
  EXPECT_NE(json.find("\"policy_name\":\"staged-from-blob\""),
            std::string::npos)
      << json;
}

TEST(ShadowPolicyTest, ShadowAgainstItselfAlwaysAgrees) {
  FbFixture fb;
  const policy::SecurityPolicy live = GeneratePolicy(&fb.catalog, 5);
  engine::DisclosureEngine engine(/*db=*/nullptr, &fb.catalog, live);
  engine.SetShadowPolicy(live, "self");
  const auto pool = RandomWorkload(&fb.schema, 2, 300, 0x5e1fULL);
  for (size_t i = 0; i < pool.size(); ++i) {
    (void)engine.Submit("app-" + std::to_string(i % 5), pool[i]);
  }
  const auto stats = engine.Stats();
  EXPECT_EQ(stats.shadow.evaluated, pool.size());
  EXPECT_EQ(stats.shadow.agree, pool.size());
  EXPECT_EQ(stats.shadow.shadow_stricter, 0u);
  EXPECT_EQ(stats.shadow.shadow_looser, 0u);
}

}  // namespace
}  // namespace fdc
