#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "label/pipeline.h"
#include "policy/reference_monitor.h"
#include "workload/label_stream.h"
#include "workload/policy_generator.h"
#include "workload/query_generator.h"

namespace fdc::workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = fb::BuildFacebookSchema();
    catalog_ = std::make_unique<label::ViewCatalog>(&schema_);
    ASSERT_TRUE(fb::RegisterFacebookViews(catalog_.get()).ok());
  }

  cq::Schema schema_;
  std::unique_ptr<label::ViewCatalog> catalog_;
};

TEST_F(WorkloadTest, DeterministicGivenSeed) {
  GeneratorOptions options;
  QueryGenerator g1(&schema_, options, 42);
  QueryGenerator g2(&schema_, options, 42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(g1.Next(), g2.Next());
  }
}

TEST_F(WorkloadTest, DifferentSeedsDiffer) {
  GeneratorOptions options;
  QueryGenerator g1(&schema_, options, 1);
  QueryGenerator g2(&schema_, options, 2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    differing += (g1.Next() == g2.Next()) ? 0 : 1;
  }
  EXPECT_GT(differing, 10);
}

TEST_F(WorkloadTest, RealisticQueriesHave1To3Atoms) {
  GeneratorOptions options;
  options.subqueries = 1;
  QueryGenerator generator(&schema_, options, 7);
  for (int i = 0; i < 300; ++i) {
    cq::ConjunctiveQuery q = generator.Next();
    EXPECT_GE(q.size(), 1);
    EXPECT_LE(q.size(), 3);
    EXPECT_TRUE(q.Validate(schema_).ok());
    EXPECT_FALSE(q.head().empty());
  }
}

TEST_F(WorkloadTest, StressQueriesRespectAtomBudget) {
  for (int k = 2; k <= 5; ++k) {
    GeneratorOptions options;
    options.subqueries = k;
    QueryGenerator generator(&schema_, options, 13 * k);
    int max_seen = 0;
    for (int i = 0; i < 200; ++i) {
      cq::ConjunctiveQuery q = generator.Next();
      EXPECT_LE(q.size(), 3 * k);
      EXPECT_TRUE(q.Validate(schema_).ok());
      max_seen = std::max(max_seen, q.size());
    }
    EXPECT_GT(max_seen, 3) << "stress mode should exceed realistic sizes";
  }
}

TEST_F(WorkloadTest, AudienceWeightsRespected) {
  GeneratorOptions options;
  options.audience_weights[0] = 1.0;  // self only
  options.audience_weights[1] = 0.0;
  options.audience_weights[2] = 0.0;
  options.audience_weights[3] = 0.0;
  QueryGenerator generator(&schema_, options, 5);
  for (int i = 0; i < 100; ++i) {
    cq::ConjunctiveQuery q = generator.Next();
    EXPECT_EQ(q.size(), 1);  // self queries never join Friend
  }
}

TEST_F(WorkloadTest, MostRealisticQueriesAreLabelable) {
  label::LabelerPipeline pipeline(catalog_.get());
  GeneratorOptions options;
  QueryGenerator generator(&schema_, options, 11);
  int labelable = 0;
  const int total = 200;
  for (int i = 0; i < total; ++i) {
    if (!pipeline.LabelPacked(generator.Next()).top()) ++labelable;
  }
  // Self/friend queries are coverable; fof/other payloads often are not
  // (only public attributes leak) — at least the self/friend half must
  // label below ⊤.
  EXPECT_GT(labelable, total / 4);
  EXPECT_LT(labelable, total);  // fof grouped-attribute queries remain ⊤
}

TEST_F(WorkloadTest, PolicyGeneratorBounds) {
  PolicyOptions options;
  options.max_partitions = 5;
  options.max_elements_per_partition = 10;
  PolicyGenerator generator(catalog_.get(), options, 21);
  for (int i = 0; i < 50; ++i) {
    policy::SecurityPolicy policy = generator.Next();
    EXPECT_GE(policy.num_partitions(), 1);
    EXPECT_LE(policy.num_partitions(), 5);
    for (const policy::Partition& partition : policy.partitions()) {
      EXPECT_GE(partition.view_ids.size(), 1u);
      EXPECT_LE(partition.view_ids.size(), 10u);
      // Distinct views.
      std::vector<int> ids = partition.view_ids;
      std::sort(ids.begin(), ids.end());
      EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
    }
  }
}

TEST_F(WorkloadTest, StatelessPolicyOptionYieldsOnePartition) {
  PolicyOptions options;
  options.max_partitions = 1;
  PolicyGenerator generator(catalog_.get(), options, 3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(generator.Next().num_partitions(), 1);
  }
}

TEST_F(WorkloadTest, LabelStreamShape) {
  label::LabelerPipeline pipeline(catalog_.get());
  auto stream = GenerateLabelStream(pipeline, 500, 10, 77);
  ASSERT_EQ(stream.size(), 500u);
  std::vector<int> per_principal(10, 0);
  for (const LabeledQuery& lq : stream) {
    ASSERT_LT(lq.principal, 10u);
    ++per_principal[lq.principal];
    EXPECT_LE(lq.label.size(), 3);
  }
  // Every principal sees some traffic.
  for (int count : per_principal) EXPECT_GT(count, 0);
}

TEST_F(WorkloadTest, EndToEndMonitorRunOnGeneratedWorkload) {
  // Glue test: stream labels through per-principal monitors; accepted
  // fraction must be neither 0 nor 1 for a meaningful benchmark.
  label::LabelerPipeline pipeline(catalog_.get());
  auto stream = GenerateLabelStream(pipeline, 1000, 20, 123);
  PolicyOptions options;
  PolicyGenerator policy_gen(catalog_.get(), options, 9);
  std::vector<policy::SecurityPolicy> policies;
  std::vector<policy::PrincipalState> states;
  for (int p = 0; p < 20; ++p) {
    policies.push_back(policy_gen.Next());
    states.push_back(
        policy::ReferenceMonitor(&policies.back()).InitialState());
  }
  int accepted = 0;
  for (const LabeledQuery& lq : stream) {
    policy::ReferenceMonitor monitor(&policies[lq.principal]);
    accepted += monitor.Submit(&states[lq.principal], lq.label) ? 1 : 0;
  }
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, 1000);
}

}  // namespace
}  // namespace fdc::workload
