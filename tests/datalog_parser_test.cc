#include "cq/datalog_parser.h"

#include <gtest/gtest.h>

#include "cq/printer.h"
#include "test_util.h"

namespace fdc::cq {
namespace {

class DatalogParserTest : public ::testing::Test {
 protected:
  Schema schema_ = test::MakePaperSchema();
};

TEST_F(DatalogParserTest, ParsesFigureOneQueries) {
  auto q1 = ParseDatalog("Q1(x) :- Meetings(x, 'Cathy')", schema_);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  EXPECT_EQ(q1->size(), 1);
  EXPECT_EQ(q1->head().size(), 1u);
  EXPECT_EQ(q1->atoms()[0].terms[1], Term::Const("Cathy"));

  auto q2 = ParseDatalog(
      "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')", schema_);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q2->size(), 2);
  // Shared variable y links the atoms.
  EXPECT_EQ(q2->atoms()[0].terms[1], q2->atoms()[1].terms[0]);
}

TEST_F(DatalogParserTest, BooleanHead) {
  auto q = ParseDatalog("V5() :- Meetings(x, y)", schema_);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->IsBoolean());
}

TEST_F(DatalogParserTest, NumericConstants) {
  auto q = ParseDatalog("V13() :- Meetings(9, 'Jim')", schema_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atoms()[0].terms[0], Term::Const("9"));
}

TEST_F(DatalogParserTest, DoubleQuotedStrings) {
  auto q = ParseDatalog("Q(x) :- Meetings(x, \"Cathy\")", schema_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atoms()[0].terms[1], Term::Const("Cathy"));
}

TEST_F(DatalogParserTest, AcceptsAndKeyword) {
  auto q = ParseDatalog(
      "Q(x) :- Meetings(x, y) AND Contacts(y, w, z)", schema_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->size(), 2);
}

TEST_F(DatalogParserTest, TrailingPeriodAllowed) {
  EXPECT_TRUE(ParseDatalog("Q(x) :- Meetings(x, y).", schema_).ok());
}

TEST_F(DatalogParserTest, SharedVariablesGetSameId) {
  auto q = ParseDatalog("Q(x) :- Meetings(x, x)", schema_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atoms()[0].terms[0], q->atoms()[0].terms[1]);
}

TEST_F(DatalogParserTest, RejectsUnknownRelation) {
  auto q = ParseDatalog("Q(x) :- Nope(x)", schema_);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kParseError);
}

TEST_F(DatalogParserTest, RejectsArityMismatch) {
  EXPECT_FALSE(ParseDatalog("Q(x) :- Meetings(x)", schema_).ok());
  EXPECT_FALSE(ParseDatalog("Q(x) :- Meetings(x, y, z)", schema_).ok());
}

TEST_F(DatalogParserTest, RejectsUnsafeHead) {
  auto q = ParseDatalog("Q(z) :- Meetings(x, y)", schema_);
  EXPECT_FALSE(q.ok());
}

TEST_F(DatalogParserTest, RejectsHeadConstants) {
  EXPECT_FALSE(ParseDatalog("Q('a') :- Meetings(x, y)", schema_).ok());
}

TEST_F(DatalogParserTest, RejectsMissingBody) {
  EXPECT_FALSE(ParseDatalog("Q(x)", schema_).ok());
  EXPECT_FALSE(ParseDatalog("Q(x) :-", schema_).ok());
}

TEST_F(DatalogParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseDatalog("Q(x) :- Meetings(x, y) garbage", schema_).ok());
}

TEST_F(DatalogParserTest, RejectsUnterminatedString) {
  EXPECT_FALSE(ParseDatalog("Q(x) :- Meetings(x, 'oops", schema_).ok());
}

TEST_F(DatalogParserTest, RoundTripsThroughPrinter) {
  auto q = ParseDatalog(
      "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')", schema_);
  ASSERT_TRUE(q.ok());
  const std::string printed = ToDatalog(*q, schema_);
  auto reparsed = ParseDatalog(printed, schema_);
  ASSERT_TRUE(reparsed.ok()) << printed;
  EXPECT_EQ(*q, *reparsed);
}

TEST_F(DatalogParserTest, TaggedBodyRendering) {
  auto q = ParseDatalog(
      "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')", schema_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(ToTaggedBody(*q, schema_),
            "[Meetings(v0_d, v1_e), Contacts(v1_e, v2_e, 'Intern')]");
}

}  // namespace
}  // namespace fdc::cq
