#include "rewriting/fold.h"

#include <gtest/gtest.h>

#include "rewriting/containment.h"
#include "test_util.h"

namespace fdc::rewriting {
namespace {

using cq::ConjunctiveQuery;
using cq::Schema;

class FoldTest : public ::testing::Test {
 protected:
  Schema schema_ = test::MakePaperSchema();
};

TEST_F(FoldTest, RemovesRedundantAtom) {
  ConjunctiveQuery q =
      test::Q("Q(x) :- Meetings(x, y), Meetings(x, z)", schema_);
  ConjunctiveQuery folded = Fold(q);
  EXPECT_EQ(folded.size(), 1);
  EXPECT_TRUE(AreEquivalent(q, folded));
}

TEST_F(FoldTest, KeepsNonRedundantJoin) {
  ConjunctiveQuery q =
      test::Q("Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')", schema_);
  EXPECT_EQ(Fold(q).size(), 2);
  EXPECT_TRUE(IsFolded(q));
}

TEST_F(FoldTest, ConstantAtomAbsorbsGeneralAtom) {
  // Boolean query: Meetings nonempty AND contains ('9','Jim') row collapses
  // to the specific test.
  ConjunctiveQuery q =
      test::Q("Q() :- Meetings(x, y), Meetings(9, 'Jim')", schema_);
  ConjunctiveQuery folded = Fold(q);
  EXPECT_EQ(folded.size(), 1);
  EXPECT_EQ(folded.atoms()[0].terms[0], cq::Term::Const("9"));
  EXPECT_TRUE(AreEquivalent(q, folded));
}

TEST_F(FoldTest, DistinguishedVariablesBlockFolding) {
  // Same shape as above but x is distinguished: both atoms must stay.
  ConjunctiveQuery q =
      test::Q("Q(x) :- Meetings(x, y), Meetings(9, 'Jim')", schema_);
  EXPECT_EQ(Fold(q).size(), 2);
}

TEST_F(FoldTest, ChainCollapse) {
  // Three copies of the same atom pattern with fresh existential variables.
  ConjunctiveQuery q = test::Q(
      "Q() :- Meetings(a, b), Meetings(c, d), Meetings(e, f)", schema_);
  EXPECT_EQ(Fold(q).size(), 1);
}

TEST_F(FoldTest, DiagonalNotRedundantWithScan) {
  // ∃(z,z) is strictly stronger than ∃(x,y): the scan atom folds away, the
  // diagonal atom stays.
  ConjunctiveQuery q =
      test::Q("Q() :- Meetings(x, y), Meetings(z, z)", schema_);
  ConjunctiveQuery folded = Fold(q);
  ASSERT_EQ(folded.size(), 1);
  EXPECT_EQ(folded.atoms()[0].terms[0], folded.atoms()[0].terms[1]);
}

TEST_F(FoldTest, FoldPreservesEquivalenceOnRandomQueries) {
  // Property: Fold(q) ≡ q and IsFolded(Fold(q)) for a spread of shapes.
  const std::vector<std::string> bodies = {
      "Q(x) :- Meetings(x, y), Meetings(x, y)",
      "Q() :- Meetings(x, 'Jim'), Meetings(y, 'Jim')",
      "Q(x) :- Meetings(x, y), Contacts(y, e, p), Contacts(y, e2, p2)",
      "Q(x, w) :- Meetings(x, y), Meetings(w, y), Meetings(x, z)",
      "Q() :- Contacts(a, b, c), Contacts(d, b, c), Contacts(a, e, c)",
  };
  for (const std::string& text : bodies) {
    ConjunctiveQuery q = test::Q(text, schema_);
    ConjunctiveQuery folded = Fold(q);
    EXPECT_TRUE(AreEquivalent(q, folded)) << text;
    EXPECT_TRUE(IsFolded(folded)) << text;
    EXPECT_LE(folded.size(), q.size()) << text;
  }
}

TEST_F(FoldTest, SingleAtomAlwaysFolded) {
  ConjunctiveQuery q = test::Q("Q(x) :- Meetings(x, x)", schema_);
  EXPECT_TRUE(IsFolded(q));
  EXPECT_EQ(Fold(q).size(), 1);
}

}  // namespace
}  // namespace fdc::rewriting
