#include "cq/pattern.h"

#include <gtest/gtest.h>

#include "cq/printer.h"
#include "test_util.h"

namespace fdc::cq {
namespace {

TEST(PatternTest, FromQueryBasic) {
  Schema schema = test::MakePaperSchema();
  AtomPattern p = test::P("V2(x) :- Meetings(x, y)", schema);
  ASSERT_EQ(p.arity(), 2);
  EXPECT_FALSE(p.terms[0].is_const);
  EXPECT_TRUE(p.terms[0].distinguished);
  EXPECT_FALSE(p.terms[1].is_const);
  EXPECT_FALSE(p.terms[1].distinguished);
  EXPECT_EQ(p.NumClasses(), 2);
}

TEST(PatternTest, ConstantsCaptured) {
  Schema schema = test::MakePaperSchema();
  AtomPattern p = test::P("Q(x) :- Meetings(x, 'Cathy')", schema);
  EXPECT_TRUE(p.terms[1].is_const);
  EXPECT_EQ(p.terms[1].value, "Cathy");
}

TEST(PatternTest, FromQueryRejectsMultiAtom) {
  Schema schema = test::MakePaperSchema();
  auto q = test::Q("Q(x) :- Meetings(x, y), Contacts(y, w, z)", schema);
  EXPECT_FALSE(AtomPattern::FromQuery(q).ok());
}

TEST(PatternTest, HeadOrderQuotientedAway) {
  // V1(x,y) :- M(x,y) and V1'(y,x) :- M(x,y) reveal the same information
  // (§3.1); their patterns are identical.
  Schema schema = test::MakePaperSchema();
  AtomPattern a = test::P("V1(x, y) :- Meetings(x, y)", schema);
  AtomPattern b = test::P("V1p(y, x) :- Meetings(x, y)", schema);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Key(), b.Key());
}

TEST(PatternTest, HeadMultiplicityQuotientedAway) {
  Schema schema = test::MakePaperSchema();
  AtomPattern a = test::P("V(x, x) :- Meetings(x, y)", schema);
  AtomPattern b = test::P("V(x) :- Meetings(x, y)", schema);
  EXPECT_EQ(a, b);
}

TEST(PatternTest, DistinguishednessDistinguishes) {
  Schema schema = test::MakePaperSchema();
  AtomPattern v1 = test::P("V1(x, y) :- Meetings(x, y)", schema);
  AtomPattern v2 = test::P("V2(x) :- Meetings(x, y)", schema);
  EXPECT_NE(v1, v2);
}

TEST(PatternTest, RepeatedVariablesShareClass) {
  Schema schema = test::MakePaperSchema();
  AtomPattern p = test::P("V15() :- Meetings(z, z)", schema);
  EXPECT_EQ(p.NumClasses(), 1);
  EXPECT_EQ(p.terms[0].cls, p.terms[1].cls);
}

TEST(PatternTest, NormalizeRenumbersByFirstOccurrence) {
  AtomPattern p;
  p.relation = 0;
  p.terms.resize(3);
  p.terms[0] = {false, "", 7, true};
  p.terms[1] = {false, "", 3, false};
  p.terms[2] = {false, "", 7, true};
  p.Normalize();
  EXPECT_EQ(p.terms[0].cls, 0);
  EXPECT_EQ(p.terms[1].cls, 1);
  EXPECT_EQ(p.terms[2].cls, 0);
}

TEST(PatternTest, ToQueryRoundTrip) {
  Schema schema = test::MakePaperSchema();
  for (const char* text : {
           "V1(x, y) :- Meetings(x, y)",
           "V2(x) :- Meetings(x, y)",
           "V5() :- Meetings(x, y)",
           "V(x) :- Contacts(x, y, 'Intern')",
           "V(x) :- Meetings(x, x)",
       }) {
    AtomPattern p = test::P(text, schema);
    ConjunctiveQuery q = p.ToQuery("V");
    auto back = AtomPattern::FromQuery(q);
    ASSERT_TRUE(back.ok()) << text;
    EXPECT_EQ(*back, p) << text;
  }
}

TEST(PatternTest, KeyIsStable) {
  Schema schema = test::MakePaperSchema();
  AtomPattern p = test::P("V(x) :- Contacts(x, y, 'Intern')", schema);
  EXPECT_EQ(p.Key(), "R1(#0d,#1e,'Intern')");
}

TEST(PatternTest, HasDistinguished) {
  Schema schema = test::MakePaperSchema();
  EXPECT_TRUE(test::P("V(x) :- Meetings(x, y)", schema).HasDistinguished());
  EXPECT_FALSE(test::P("V() :- Meetings(x, y)", schema).HasDistinguished());
}

TEST(PatternTest, PrinterRendersNames) {
  Schema schema = test::MakePaperSchema();
  AtomPattern p = test::P("V(x) :- Contacts(x, y, 'Intern')", schema);
  EXPECT_EQ(PatternToString(p, schema), "Contacts(x0_d, x1_e, 'Intern')");
}

TEST(PatternTest, RandomPatternsNormalized) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    AtomPattern p = test::RandomPattern(&rng, 0, 3);
    AtomPattern q = p;
    q.Normalize();
    EXPECT_EQ(p, q);  // generator output is already normalized
  }
}

}  // namespace
}  // namespace fdc::cq
