#include "rewriting/containment_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <climits>
#include <thread>

#include "order/rewriting_order.h"
#include "order/universe.h"
#include "rewriting/containment.h"
#include "test_util.h"

namespace fdc::rewriting {
namespace {

using Kind = ContainmentCache::Kind;

TEST(ContainmentCacheTest, LookupMissThenHit) {
  ContainmentCache cache(64);
  EXPECT_FALSE(cache.Lookup(Kind::kUniverseRewritable, 1, 2).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.Insert(Kind::kUniverseRewritable, 1, 2, true);
  auto hit = cache.Lookup(Kind::kUniverseRewritable, 1, 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ContainmentCacheTest, KindsAreSeparateNamespaces) {
  ContainmentCache cache(64);
  cache.Insert(Kind::kUniverseRewritable, 7, 9, true);
  cache.Insert(Kind::kCatalogRewritable, 7, 9, false);
  // Direct-mapped slots may collide across kinds (the second insert can
  // evict the first), but a stored entry must never answer for the wrong
  // kind.
  auto catalog = cache.Lookup(Kind::kCatalogRewritable, 7, 9);
  ASSERT_TRUE(catalog.has_value());
  EXPECT_FALSE(*catalog);
  auto universe = cache.Lookup(Kind::kUniverseRewritable, 7, 9);
  if (universe.has_value()) EXPECT_TRUE(*universe);
}

TEST(ContainmentCacheTest, CapacityIsBoundedAndEvictionsCounted) {
  // Single shard so the total capacity is exactly the requested 8 slots.
  ContainmentCache cache(8, /*shards=*/1);
  EXPECT_EQ(cache.capacity(), 8u);
  for (int i = 0; i < 1000; ++i) {
    cache.Insert(Kind::kUniverseRewritable, i, i + 1, (i % 2) == 0);
  }
  EXPECT_EQ(cache.stats().insertions, 1000u);
  // 1000 inserts into 8 slots must evict; the table itself never grows.
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.capacity(), 8u);
  // Whatever survives must be the value that was inserted for its key.
  int survivors = 0;
  for (int i = 0; i < 1000; ++i) {
    auto cached = cache.Lookup(Kind::kUniverseRewritable, i, i + 1);
    if (cached.has_value()) {
      ++survivors;
      EXPECT_EQ(*cached, (i % 2) == 0) << "wrong value for evictable key " << i;
    }
  }
  EXPECT_GT(survivors, 0);
  EXPECT_LE(survivors, 8);
}

// Regression for the seed's RewritingOrder::LeqPair key scheme: two signed
// ints were packed via static_cast<uint32_t> with no guard. The cache must
// keep adversarial id pairs — negative, INT_MAX/INT_MIN, swapped — fully
// distinct.
TEST(ContainmentCacheTest, AdversarialIdPairsNeverAlias) {
  const std::vector<std::pair<int, int>> pairs = {
      {-1, 0},        {0, -1},          {-1, -1},       {1, 2},
      {2, 1},         {INT_MAX, 0},     {0, INT_MAX},   {INT_MIN, INT_MAX},
      {INT_MAX, INT_MIN}, {-42, 42},    {42, -42},      {INT_MIN, INT_MIN}};
  // Large capacity so distinct keys land in distinct slots with high
  // probability; correctness still must not depend on it (full keys are
  // compared), so also run with a tiny cache below.
  for (size_t capacity : {size_t{1} << 12, size_t{4}}) {
    ContainmentCache cache(capacity, /*shards=*/1);
    for (size_t i = 0; i < pairs.size(); ++i) {
      cache.Insert(Kind::kUniverseRewritable, pairs[i].first, pairs[i].second,
                   (i % 3) == 0);
    }
    for (size_t i = 0; i < pairs.size(); ++i) {
      auto cached = cache.Lookup(Kind::kUniverseRewritable, pairs[i].first,
                                 pairs[i].second);
      if (cached.has_value()) {
        // May have been evicted (tiny cache), but never the wrong answer.
        EXPECT_EQ(*cached, (i % 3) == 0)
            << "aliased pair (" << pairs[i].first << ", " << pairs[i].second
            << ")";
      }
    }
  }
}

TEST(ContainmentCacheTest, ClearResetsEntriesAndStats) {
  ContainmentCache cache(16);
  cache.Insert(Kind::kUniverseRewritable, 1, 2, true);
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(Kind::kUniverseRewritable, 1, 2).has_value());
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ContainmentCacheTest, ContainedMatchesUncachedContainment) {
  cq::Schema schema = test::MakePaperSchema();
  cq::QueryInterner interner;
  ContainmentCache cache(256);
  const std::vector<cq::ConjunctiveQuery> queries = {
      test::Q("Q(x) :- Meetings(x, y)", schema),
      test::Q("Q(x) :- Meetings(x, 'Cathy')", schema),
      test::Q("Q(x) :- Meetings(x, y), Contacts(y, e, p)", schema),
      test::Q("Q(x) :- Meetings(x, x)", schema),
      test::Q("Q(x, y) :- Meetings(x, y)", schema),
  };
  for (const auto& a : queries) {
    for (const auto& b : queries) {
      const bool expected = IsContainedIn(a, b);
      const cq::InternedQuery& ia = interner.Intern(a);
      const cq::InternedQuery& ib = interner.Intern(b);
      EXPECT_EQ(cache.Contained(ia, ib), expected);
      // Second call must hit.
      const uint64_t hits_before = cache.stats().hits;
      EXPECT_EQ(cache.Contained(ia, ib), expected);
      EXPECT_GT(cache.stats().hits, hits_before);
    }
  }
}

TEST(ContainmentCacheTest, ForeignInternerBypassesCatalogCache) {
  cq::Schema schema = test::MakePaperSchema();
  const cq::AtomPattern scan = test::P("V(x, y) :- Meetings(x, y)", schema);
  const cq::AtomPattern times = test::P("V(x) :- Meetings(x, y)", schema);

  cq::QueryInterner bound, foreign;
  ContainmentCache cache(64);
  // Bind the cache to `bound`: its id 0 means `scan`, and the cached
  // decision for (0, view 0) is "scan not rewritable over times" = false.
  const int scan_id = bound.InternPattern(scan);
  EXPECT_FALSE(cache.RewritableCached(bound, scan_id, 0, scan, times));

  // In `foreign`, id 0 means `times` (trivially rewritable over itself).
  // The aliasing id must compute the right answer, not return the bound
  // entry's false.
  const int foreign_times_id = foreign.InternPattern(times);
  ASSERT_EQ(foreign_times_id, scan_id);
  EXPECT_TRUE(
      cache.RewritableCached(foreign, foreign_times_id, 0, times, times));
  // And the bound id space must not have been poisoned.
  EXPECT_FALSE(cache.RewritableCached(bound, scan_id, 0, scan, times));
}

// Many threads hammering one small sharded cache: every Lookup hit must
// return the pure-function value for its key (never a torn or cross-kind
// entry), and the summed stats must balance. Run under TSan in CI against
// BOTH read-probe implementations — the lock-free seqlock probe (kEbr)
// and the mutex probe (kLocked oracle).
void ConcurrentLookupInsertStress(epoch::ReclaimChoice reclaim) {
  ContainmentCache cache(256, /*shards=*/4, reclaim);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> threads;
  std::atomic<int> wrong{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &wrong, t] {
      uint64_t rng = 0x9e3779b97f4a7c15ULL * (t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        const int a = static_cast<int>(rng % 64);
        const int b = static_cast<int>((rng >> 8) % 64);
        // The cached decision is a pure function of the pair: a < b.
        if (auto cached = cache.Lookup(Kind::kUniverseRewritable, a, b)) {
          if (*cached != (a < b)) wrong.fetch_add(1);
        } else {
          cache.Insert(Kind::kUniverseRewritable, a, b, a < b);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0);
  const ContainmentCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  // Seqlock false misses (reader overlapping an in-progress write) are
  // counted as misses and re-inserted like any other miss, so the
  // one-insert-per-miss invariant holds in both modes.
  EXPECT_EQ(stats.insertions, stats.misses);
}

TEST(ContainmentCacheTest, ConcurrentLookupInsertIsConsistentEbr) {
  ConcurrentLookupInsertStress(epoch::ReclaimChoice::kEbr);
}

TEST(ContainmentCacheTest, ConcurrentLookupInsertIsConsistentLocked) {
  ConcurrentLookupInsertStress(epoch::ReclaimChoice::kLocked);
}

// The seqlock probe and the mutex probe are answer-identical: slot mapping
// and eviction are mode-independent, so the same insert sequence must
// yield the same hit/miss/value outcome for every key in both modes.
TEST(ContainmentCacheTest, SeqlockProbeMatchesLockedProbe) {
  ContainmentCache ebr(64, /*shards=*/2, epoch::ReclaimChoice::kEbr);
  ContainmentCache locked(64, /*shards=*/2, epoch::ReclaimChoice::kLocked);
  EXPECT_EQ(ebr.reclaim_mode(), epoch::ReclaimMode::kEbr);
  EXPECT_EQ(locked.reclaim_mode(), epoch::ReclaimMode::kLocked);
  for (int i = 0; i < 500; ++i) {
    const int a = (i * 17) % 97;
    const int b = (i * 31) % 89;
    const Kind kind =
        (i % 2) == 0 ? Kind::kUniverseRewritable : Kind::kCatalogRewritable;
    ebr.Insert(kind, a, b, (a ^ b) % 3 == 0);
    locked.Insert(kind, a, b, (a ^ b) % 3 == 0);
  }
  for (int i = 0; i < 500; ++i) {
    const int a = (i * 17) % 97;
    const int b = (i * 31) % 89;
    const Kind kind =
        (i % 2) == 0 ? Kind::kUniverseRewritable : Kind::kCatalogRewritable;
    EXPECT_EQ(ebr.Lookup(kind, a, b), locked.Lookup(kind, a, b))
        << "probe diverged for (" << a << ", " << b << ")";
  }
}

TEST(ContainmentCacheTest, RewritingOrderSharesOneCache) {
  cq::Schema schema = test::MakePaperSchema();
  order::Universe universe;
  universe.Add(test::P("V(x) :- Meetings(x, y)", schema));
  universe.Add(test::P("W(x, y) :- Meetings(x, y)", schema));
  ContainmentCache shared(256);
  order::RewritingOrder first(&universe, &shared);
  order::RewritingOrder second(&universe, &shared);
  EXPECT_TRUE(first.LeqPair(0, 1));
  const uint64_t hits_before = shared.stats().hits;
  // A different order object over the same universe reuses the decision.
  EXPECT_TRUE(second.LeqPair(0, 1));
  EXPECT_GT(shared.stats().hits, hits_before);
}

}  // namespace
}  // namespace fdc::rewriting
