// Agreement property suite for the predicate-indexed homomorphism engine:
// on randomized query pairs, the indexed search (per-predicate candidate
// buckets, constant filters, digest rejects) must return exactly the same
// existence answers as the seed linear-scan backtracking engine, and every
// witness mapping it produces must be a valid homomorphism. Seeds are fixed
// for reproducibility.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "cq/interned.h"
#include "cq/schema.h"
#include "rewriting/containment.h"
#include "rewriting/homomorphism.h"

namespace fdc::rewriting {
namespace {

using cq::Atom;
using cq::ConjunctiveQuery;
using cq::Term;

// A schema with several relations of mixed arity so the predicate index has
// real buckets to discriminate.
cq::Schema MakeWideSchema() {
  cq::Schema schema;
  (void)schema.AddRelation("R0", {"a"});
  (void)schema.AddRelation("R1", {"a", "b"});
  (void)schema.AddRelation("R2", {"a", "b", "c"});
  (void)schema.AddRelation("R3", {"a", "b"});
  return schema;
}

constexpr int kNumRelations = 4;
const int kArity[kNumRelations] = {1, 2, 3, 2};
const char* const kConstPool[3] = {"a", "b", "c"};

ConjunctiveQuery RandomQuery(Rng* rng, int max_atoms, int num_vars) {
  const int natoms = static_cast<int>(rng->Range(1, max_atoms));
  std::vector<Atom> atoms;
  std::vector<bool> used(num_vars, false);
  for (int i = 0; i < natoms; ++i) {
    const int relation = static_cast<int>(rng->Below(kNumRelations));
    std::vector<Term> terms;
    for (int p = 0; p < kArity[relation]; ++p) {
      if (rng->Chance(0.25)) {
        terms.push_back(Term::Const(kConstPool[rng->Below(3)]));
      } else {
        const int v = static_cast<int>(rng->Below(num_vars));
        used[v] = true;
        terms.push_back(Term::Var(v));
      }
    }
    atoms.emplace_back(relation, std::move(terms));
  }
  std::vector<Term> head;
  for (int v = 0; v < num_vars; ++v) {
    if (used[v] && rng->Chance(0.4)) head.push_back(Term::Var(v));
  }
  return ConjunctiveQuery("Q", std::move(head), std::move(atoms));
}

// Checks that `mapping` really is a homomorphism from `from` into the
// allowed atoms of `to` (and fixes distinguished vars when required).
void ExpectValidHomomorphism(const ConjunctiveQuery& from,
                             const ConjunctiveQuery& to,
                             const VarMapping& mapping,
                             const HomOptions& options,
                             const std::vector<bool>& allowed) {
  for (const Atom& a : from.atoms()) {
    Atom img(a.relation, {});
    for (const Term& t : a.terms) {
      if (t.is_const()) {
        img.terms.push_back(t);
      } else {
        ASSERT_LT(static_cast<size_t>(t.var()), mapping.size());
        ASSERT_TRUE(mapping[t.var()].has_value());
        img.terms.push_back(*mapping[t.var()]);
      }
    }
    bool found = false;
    for (size_t bi = 0; bi < to.atoms().size() && !found; ++bi) {
      if (!allowed.empty() && !allowed[bi]) continue;
      found = to.atoms()[bi] == img;
    }
    EXPECT_TRUE(found) << "image atom not present in target";
  }
  if (options.fix_distinguished) {
    for (int v : from.DistinguishedVars()) {
      ASSERT_LT(static_cast<size_t>(v), mapping.size());
      ASSERT_TRUE(mapping[v].has_value());
      EXPECT_EQ(*mapping[v], Term::Var(v));
    }
  }
}

void CheckAgreement(const ConjunctiveQuery& from, const ConjunctiveQuery& to,
                    HomOptions options, const std::vector<bool>& allowed) {
  options.engine = HomEngine::kLinear;
  const auto linear = FindHomomorphism(from, to, options, allowed);
  options.engine = HomEngine::kIndexed;
  const auto indexed = FindHomomorphism(from, to, options, allowed);
  ASSERT_EQ(linear.has_value(), indexed.has_value())
      << "engines disagree on existence";
  if (indexed.has_value()) {
    ExpectValidHomomorphism(from, to, *indexed, options, allowed);
  }
  if (linear.has_value()) {
    ExpectValidHomomorphism(from, to, *linear, options, allowed);
  }
}

TEST(HomIndexPropertyTest, EnginesAgreeOnRandomPairs) {
  Rng rng(0x1dee'0001);
  for (int trial = 0; trial < 400; ++trial) {
    const ConjunctiveQuery a = RandomQuery(&rng, 4, 4);
    const ConjunctiveQuery b = RandomQuery(&rng, 5, 4);
    CheckAgreement(a, b, {}, {});
  }
}

TEST(HomIndexPropertyTest, EnginesAgreeOnFoldingShapes) {
  // The folding workload: self-homomorphisms fixing distinguished vars with
  // one target atom excluded.
  Rng rng(0x1dee'0002);
  for (int trial = 0; trial < 200; ++trial) {
    const ConjunctiveQuery q = RandomQuery(&rng, 5, 4);
    for (size_t drop = 0; drop < q.atoms().size(); ++drop) {
      std::vector<bool> allowed(q.atoms().size(), true);
      allowed[drop] = false;
      HomOptions options;
      options.fix_distinguished = true;
      CheckAgreement(q, q, options, allowed);
    }
  }
}

TEST(HomIndexPropertyTest, EnginesAgreeOnContainmentSeeds) {
  // The containment workload: head-aligned seeds (IsContainedIn's shape).
  Rng rng(0x1dee'0003);
  for (int trial = 0; trial < 300; ++trial) {
    const ConjunctiveQuery q1 = RandomQuery(&rng, 4, 4);
    const ConjunctiveQuery q2 = RandomQuery(&rng, 4, 4);
    if (q1.head().size() != q2.head().size()) continue;
    HomOptions options;
    for (size_t i = 0; i < q2.head().size(); ++i) {
      options.seed.emplace_back(q2.head()[i].var(), q1.head()[i]);
    }
    CheckAgreement(q2, q1, options, {});
  }
}

TEST(HomIndexPropertyTest, InternedEntryPointAgreesWithLinear) {
  Rng rng(0x1dee'0004);
  cq::QueryInterner interner;
  for (int trial = 0; trial < 300; ++trial) {
    const ConjunctiveQuery a = RandomQuery(&rng, 4, 4);
    const ConjunctiveQuery b = RandomQuery(&rng, 5, 4);
    const cq::InternedQuery& ia = interner.Intern(a);
    const cq::InternedQuery& ib = interner.Intern(b);
    HomOptions linear_options;
    linear_options.engine = HomEngine::kLinear;
    // Compare on the canonical forms: interning canonicalizes, and
    // homomorphism existence is invariant under isomorphism.
    const bool expected =
        FindHomomorphism(ia.query(), ib.query(), linear_options).has_value();
    EXPECT_EQ(FindHomomorphismInterned(ia, ib).has_value(), expected);
  }
}

TEST(HomIndexPropertyTest, BudgetExhaustionIsReported) {
  cq::Schema schema = MakeWideSchema();
  (void)schema;
  // A target with many interchangeable atoms forces real search.
  std::vector<Atom> from_atoms;
  std::vector<Atom> to_atoms;
  for (int i = 0; i < 6; ++i) {
    from_atoms.emplace_back(1, std::vector<Term>{Term::Var(i), Term::Var(i + 1)});
    to_atoms.emplace_back(
        1, std::vector<Term>{Term::Var(10 + i), Term::Var(11 + i)});
  }
  // Break the chain in the target so full mapping requires backtracking.
  ConjunctiveQuery from("F", {}, from_atoms);
  ConjunctiveQuery to("T", {}, to_atoms);

  HomOptions options;
  HomStats stats;
  options.stats = &stats;
  options.max_steps = 2;
  const auto bounded = FindHomomorphism(from, to, options);
  // With a 2-step budget on a 6-atom search, the engine must either finish
  // trivially or report exhaustion; it must never loop unboundedly.
  if (!bounded.has_value()) {
    EXPECT_TRUE(stats.budget_exhausted || stats.steps <= 2);
  }

  options.max_steps = 0;
  HomStats full_stats;
  options.stats = &full_stats;
  const auto unbounded = FindHomomorphism(from, to, options);
  EXPECT_TRUE(unbounded.has_value());  // chains embed into chains
  EXPECT_FALSE(full_stats.budget_exhausted);
  EXPECT_GT(full_stats.steps, 0u);
}

TEST(HomIndexPropertyTest, IndexedIsContainedInMatchesKnownFacts) {
  // Containment sanity on the paper's examples now that IsContainedIn runs
  // through the indexed engine by default.
  cq::Schema schema;
  (void)schema.AddRelation("Meetings", {"time", "person"});
  ConjunctiveQuery sel("Q", {Term::Var(0)},
                       {Atom(0, {Term::Var(0), Term::Const("Cathy")})});
  ConjunctiveQuery all("Q", {Term::Var(0)},
                       {Atom(0, {Term::Var(0), Term::Var(1)})});
  EXPECT_TRUE(IsContainedIn(sel, all));
  EXPECT_FALSE(IsContainedIn(all, sel));
}

}  // namespace
}  // namespace fdc::rewriting
