// Unit and stress tests for the epoch-based reclamation domain
// (common/epoch.h) — the foundation under the engine's wait-free read path.
// The use-after-retire canary is the ASan-facing proof: a retired object's
// deleter poisons a magic word before freeing, so a reader that could ever
// observe reclaimed memory fails the magic check (and trips ASan on the
// freed access) instead of silently reading garbage.
#include "common/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace fdc::epoch {
namespace {

constexpr uint64_t kAlive = 0xa11ce0ffee5a11ceULL;
constexpr uint64_t kPoisoned = 0xdeadbeefdeadbeefULL;

struct Canary {
  std::atomic<uint64_t> magic{kAlive};
  std::atomic<bool>* freed_flag = nullptr;

  explicit Canary(std::atomic<bool>* flag = nullptr) : freed_flag(flag) {}
  ~Canary() {
    // Poison before the memory returns to the allocator: a reader holding
    // a stale pointer sees kPoisoned even when the allocator immediately
    // reuses the block without ASan.
    magic.store(kPoisoned, std::memory_order_relaxed);
    if (freed_flag != nullptr) {
      freed_flag->store(true, std::memory_order_release);
    }
  }
};

TEST(EpochTest, ResolveHonorsExplicitChoice) {
  EXPECT_EQ(Resolve(ReclaimChoice::kLocked), ReclaimMode::kLocked);
  EXPECT_EQ(Resolve(ReclaimChoice::kEbr), ReclaimMode::kEbr);
  // kAuto defers to FDC_EPOCH; either answer is valid, but it must be the
  // process-wide default and stable across calls.
  EXPECT_EQ(Resolve(ReclaimChoice::kAuto), DefaultReclaimMode());
  EXPECT_EQ(DefaultReclaimMode(), DefaultReclaimMode());
}

TEST(EpochTest, RetireWithoutReadersFreesOnDrain) {
  Domain& domain = Domain::Instance();
  std::atomic<bool> freed{false};
  domain.RetireDelete(new Canary(&freed));
  domain.DrainForTesting();
  EXPECT_TRUE(freed.load(std::memory_order_acquire));
  const DomainStats stats = domain.Stats();
  EXPECT_GE(stats.retired, 1u);
  EXPECT_GE(stats.freed, 1u);
}

// A pinned guard must block reclamation of anything retired while it is
// held — no matter how many collection attempts run — and release must let
// the next drain free it.
TEST(EpochTest, GuardBlocksReclamationUntilReleased) {
  Domain& domain = Domain::Instance();
  domain.DrainForTesting();
  std::atomic<bool> freed{false};
  {
    Guard guard;
    // Retire and aggressively collect from another thread: the pinned
    // guard on this thread caps epoch advancement, so the canary cannot
    // reach the retire+2 free rule.
    std::thread writer([&] {
      domain.RetireDelete(new Canary(&freed));
      for (int i = 0; i < 16; ++i) domain.Collect();
    });
    writer.join();
    EXPECT_FALSE(freed.load(std::memory_order_acquire));
  }
  domain.DrainForTesting();
  EXPECT_TRUE(freed.load(std::memory_order_acquire));
}

TEST(EpochTest, NestedGuardsPinOnce) {
  Domain& domain = Domain::Instance();
  domain.DrainForTesting();
  std::atomic<bool> freed{false};
  {
    Guard outer;
    {
      Guard inner;  // must not double-release on scope exit
      std::thread writer([&] {
        domain.RetireDelete(new Canary(&freed));
        for (int i = 0; i < 16; ++i) domain.Collect();
      });
      writer.join();
      EXPECT_FALSE(freed.load(std::memory_order_acquire));
    }
    // Inner guard released; the outer pin still protects the canary.
    domain.Collect();
    EXPECT_FALSE(freed.load(std::memory_order_acquire));
  }
  domain.DrainForTesting();
  EXPECT_TRUE(freed.load(std::memory_order_acquire));
}

// Use-after-retire canary under churn: readers continuously pin, load the
// published pointer, and validate the magic word; a writer keeps swapping
// in fresh canaries and retiring the old ones. Any reclamation-before-
// quiescence bug surfaces as a kPoisoned read (and as a use-after-free
// under ASan/TSan, which run this suite in CI).
TEST(EpochTest, PoisonedCanaryNeverObservedByPinnedReaders) {
  Domain& domain = Domain::Instance();
  constexpr int kReaders = 4;
  constexpr int kSwaps = 2000;

  std::atomic<Canary*> current{new Canary()};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> poisoned_reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Guard guard;
        Canary* canary = current.load(std::memory_order_acquire);
        if (canary->magic.load(std::memory_order_relaxed) != kAlive) {
          poisoned_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < kSwaps; ++i) {
    Canary* old = current.exchange(new Canary(), std::memory_order_acq_rel);
    domain.RetireDelete(old);
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  domain.RetireDelete(current.exchange(nullptr, std::memory_order_acq_rel));
  domain.DrainForTesting();

  EXPECT_EQ(poisoned_reads.load(), 0u)
      << "a pinned reader observed reclaimed memory";
  const DomainStats stats = domain.Stats();
  EXPECT_EQ(stats.pending, 0u) << "drain left retired objects unfreed";
  EXPECT_GE(stats.retired, static_cast<uint64_t>(kSwaps));
  EXPECT_GT(stats.advances, 0u);
}

// Heavy mixed stress: many short-lived pin/unpin cycles racing retires from
// several writers; afterwards everything retired must be freed and the
// counters must balance.
TEST(EpochTest, MultiWriterStressDrainsToZeroPending) {
  Domain& domain = Domain::Instance();
  domain.DrainForTesting();
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kRetiresPerWriter = 1000;

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Guard guard;
        // Nested pin exercises the depth fast path under contention.
        Guard nested;
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kRetiresPerWriter; ++i) {
        domain.RetireDelete(new Canary());
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  domain.DrainForTesting();

  const DomainStats stats = domain.Stats();
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.retired, stats.freed);
}

}  // namespace
}  // namespace fdc::epoch
