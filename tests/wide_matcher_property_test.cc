// Cross-stack differential suite for the wide (multi-word) mask path: the
// compiled catalog matcher, the label representation, the policy checker
// and the reference monitor must agree bit-for-bit with the seed per-view
// AtomRewritable oracle for *any* number of views per relation — no views
// excluded, no over-labeling — erasing the former 32-views-per-relation
// packed edge. The suite explicitly pins the 31/32/33/63/64/65 view-count
// boundaries (the packed capacity and the word width), plus 128 views:
//
//   * CompiledCatalogMatcher::MatchMaskWords ≡ the raw AtomRewritable loop
//     ≡ LabelerPipeline::LabelWide over random schemas/catalogs/patterns at
//     1–128 views per relation, and MatchMask stays the exact low-32-bit
//     truncation (the packed contract, unchanged);
//   * LabelingPipeline (compiled path) labels carry the same per-atom ℓ+
//     bit sets as the LabelWide oracle, and their lattice order (Leq)
//     coincides;
//   * SecurityPolicy / ReferenceMonitor / PolicyStore decide identically to
//     a set-based oracle monitor over the raw ℓ+ view-id sets;
//   * the steady-state wide kernels (MatchMaskWords into a warm buffer,
//     MatchWideAtom into a warm reusable label) make zero heap allocations
//     (counted via a global operator new override).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cq/pattern.h"
#include "cq/schema.h"
#include "label/compiled_matcher.h"
#include "label/dissect.h"
#include "label/pipeline.h"
#include "label/view_catalog.h"
#include "policy/policy.h"
#include "policy/policy_analysis.h"
#include "policy/policy_store.h"
#include "policy/reference_monitor.h"
#include "rewriting/atom_rewriting.h"

// ---------------------------------------------------------------------------
// Allocation counting: every operator new in this binary bumps the counter
// when armed. Used to prove the warm wide kernels allocate nothing.
// ---------------------------------------------------------------------------
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fdc::label {
namespace {

using cq::Atom;
using cq::AtomPattern;
using cq::ConjunctiveQuery;
using cq::Term;

constexpr int kMaxArity = 5;
const char* const kConstPool[6] = {"a", "b", "c", "d", "e", "f"};

cq::Schema RandomSchema(Rng* rng, int num_relations,
                        std::vector<int>* arities) {
  cq::Schema schema;
  for (int r = 0; r < num_relations; ++r) {
    const int arity = static_cast<int>(rng->Range(2, kMaxArity));
    std::vector<std::string> cols;
    for (int c = 0; c < arity; ++c) cols.push_back("c" + std::to_string(c));
    (void)schema.AddRelation("R" + std::to_string(r), cols);
    arities->push_back(arity);
  }
  return schema;
}

AtomPattern RandomPattern(Rng* rng, int relation, int arity) {
  std::vector<Term> terms;
  const int num_vars = 1 + static_cast<int>(rng->Below(arity));
  for (int p = 0; p < arity; ++p) {
    if (rng->Chance(0.3)) {
      terms.push_back(Term::Const(kConstPool[rng->Below(6)]));
    } else {
      terms.push_back(Term::Var(static_cast<int>(rng->Below(num_vars))));
    }
  }
  std::vector<bool> distinguished(num_vars, false);
  for (int v = 0; v < num_vars; ++v) distinguished[v] = rng->Chance(0.5);
  return AtomPattern::FromAtom(Atom(relation, std::move(terms)),
                               distinguished);
}

// Registers exactly `views_per_relation` random views on every relation, so
// a chosen view-count boundary is hit on *each* relation, not just in
// aggregate.
void BoundaryCatalog(Rng* rng, ViewCatalog* catalog,
                     const std::vector<int>& arities, int views_per_relation) {
  for (size_t relation = 0; relation < arities.size(); ++relation) {
    for (int k = 0; k < views_per_relation; ++k) {
      const AtomPattern pattern =
          RandomPattern(rng, static_cast<int>(relation), arities[relation]);
      (void)catalog->AddView(
          "v" + std::to_string(relation) + "_" + std::to_string(k),
          pattern.ToQuery("V"));
    }
  }
}

// The seed-of-seeds: the raw per-view AtomRewritable loop with *no* view
// cap — every view's bit, in multi-word form.
std::vector<uint64_t> OracleWords(const ViewCatalog& catalog,
                                  const AtomPattern& pattern, int words) {
  std::vector<uint64_t> out(static_cast<size_t>(words), 0);
  for (int view_id : catalog.ViewsOfRelation(pattern.relation)) {
    const SecurityView& view = catalog.view(view_id);
    if (rewriting::AtomRewritable(pattern, view.pattern)) {
      out[static_cast<size_t>(view.bit) / 64] |= uint64_t{1}
                                                 << (view.bit % 64);
    }
  }
  return out;
}

// One dissected atom's ℓ+ as a (relation, trimmed bit words) pair —
// the representation-independent form both label types reduce to.
struct AtomBits {
  int relation = -1;
  std::vector<uint64_t> bits;

  bool operator==(const AtomBits& other) const {
    return relation == other.relation && bits == other.bits;
  }
  bool operator<(const AtomBits& other) const {
    if (relation != other.relation) return relation < other.relation;
    return bits < other.bits;
  }
};

std::vector<AtomBits> CanonicalAtoms(const DisclosureLabel& label) {
  std::vector<AtomBits> out;
  for (const PackedAtomLabel& atom : label.atoms()) {
    out.push_back({static_cast<int>(atom.relation()),
                   {static_cast<uint64_t>(atom.mask())}});
  }
  for (const WideAtomLabel& atom : label.wide_atoms()) {
    out.push_back({atom.relation, atom.mask});
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<AtomBits> CanonicalAtoms(const WideLabel& label) {
  std::vector<AtomBits> out;
  for (const WideAtomLabel& atom : label.atoms()) {
    out.push_back({atom.relation, atom.mask});
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// Random multi-atom query (1-3 atoms, shared variables) so folding and
// dissection are on the tested path.
ConjunctiveQuery RandomQuery(Rng* rng, const std::vector<int>& arities) {
  const int natoms = 1 + static_cast<int>(rng->Below(3));
  std::vector<Atom> atoms;
  std::vector<bool> used(4, false);
  for (int a = 0; a < natoms; ++a) {
    const int relation = static_cast<int>(rng->Below(arities.size()));
    std::vector<Term> terms;
    for (int p = 0; p < arities[relation]; ++p) {
      if (rng->Chance(0.25)) {
        terms.push_back(Term::Const(kConstPool[rng->Below(6)]));
      } else {
        const int v = static_cast<int>(rng->Below(4));
        used[v] = true;
        terms.push_back(Term::Var(v));
      }
    }
    atoms.emplace_back(relation, std::move(terms));
  }
  std::vector<Term> head;
  for (int v = 0; v < 4; ++v) {
    if (used[v] && rng->Chance(0.4)) head.push_back(Term::Var(v));
  }
  return ConjunctiveQuery("Q", std::move(head), std::move(atoms));
}

// The packed-capacity and word-width boundaries, pinned explicitly: today's
// packed edge (31/32/33), the word edge (63/64/65), and a deep two-word
// catalog (128). The low counts keep the packed regression honest.
const int kBoundaryViewCounts[] = {1, 5, 31, 32, 33, 63, 64, 65, 128};

TEST(WideMatcherPropertyTest, MatchesSeedOracleAcrossViewCountBoundaries) {
  Rng rng(0x71de'0001);
  for (const int views : kBoundaryViewCounts) {
    for (int trial = 0; trial < 3; ++trial) {
      std::vector<int> arities;
      const int num_relations = 1 + static_cast<int>(rng.Below(2));
      cq::Schema schema = RandomSchema(&rng, num_relations, &arities);
      ViewCatalog catalog(&schema);
      BoundaryCatalog(&rng, &catalog, arities, views);
      ASSERT_EQ(catalog.MaxViewsPerRelation(), views);
      const CompiledCatalogMatcher matcher =
          CompiledCatalogMatcher::Compile(catalog);
      const int expected_words = (views + 63) / 64;
      std::vector<uint64_t> got(static_cast<size_t>(expected_words), ~0ULL);
      WideAtomLabel wide;
      for (int i = 0; i < 40; ++i) {
        const int relation = static_cast<int>(rng.Below(arities.size()));
        const AtomPattern pattern =
            RandomPattern(&rng, relation, arities[relation]);
        ASSERT_EQ(matcher.MaskWords(relation), expected_words);
        EXPECT_EQ(matcher.UsesWideMask(relation),
                  views > kPackedViewCapacity);
        const std::vector<uint64_t> oracle =
            OracleWords(catalog, pattern, expected_words);
        // Full wide mask: every view bit, none excluded.
        matcher.MatchMaskWords(pattern, got.data());
        EXPECT_EQ(got, oracle) << "views=" << views << " trial=" << trial
                               << " pattern " << pattern.Key();
        // Packed contract unchanged: exactly the low 32 bits.
        EXPECT_EQ(matcher.MatchMask(pattern),
                  static_cast<uint32_t>(oracle[0]))
            << "views=" << views << " pattern " << pattern.Key();
        // Reusable wide atom: trimmed oracle.
        matcher.MatchWideAtom(pattern, &wide);
        std::vector<uint64_t> trimmed = oracle;
        while (!trimmed.empty() && trimmed.back() == 0) trimmed.pop_back();
        EXPECT_EQ(wide.relation, pattern.relation);
        EXPECT_EQ(wide.mask, trimmed) << "views=" << views;
      }
    }
  }
}

TEST(WideMatcherPropertyTest, PipelineLabelsMatchWideOracle) {
  Rng rng(0x71de'0002);
  for (const int views : {5, 33, 65, 128}) {
    std::vector<int> arities;
    cq::Schema schema = RandomSchema(&rng, 2, &arities);
    ViewCatalog catalog(&schema);
    BoundaryCatalog(&rng, &catalog, arities, views);
    LabelingPipeline pipeline(&catalog);
    LabelerPipeline oracle(&catalog);
    for (int i = 0; i < 60; ++i) {
      const ConjunctiveQuery query = RandomQuery(&rng, arities);
      const DisclosureLabel label = pipeline.Label(query);
      const WideLabel wide = oracle.LabelWide(query);
      EXPECT_EQ(label.top(), wide.top()) << "views=" << views;
      EXPECT_EQ(CanonicalAtoms(label), CanonicalAtoms(wide))
          << "views=" << views << " query " << i;
      // Representation invariant: packed atoms only for narrow relations,
      // wide atoms only beyond the packed capacity.
      for (const PackedAtomLabel& atom : label.atoms()) {
        EXPECT_LE(catalog.ViewsOfRelation(atom.relation()).size(),
                  static_cast<size_t>(kPackedViewCapacity));
      }
      for (const WideAtomLabel& atom : label.wide_atoms()) {
        EXPECT_GT(catalog.ViewsOfRelation(atom.relation).size(),
                  static_cast<size_t>(kPackedViewCapacity));
      }
    }
    if (views > kPackedViewCapacity) {
      EXPECT_GT(pipeline.stats().wide_mask_evals, 0u);
    } else {
      EXPECT_EQ(pipeline.stats().wide_mask_evals, 0u);
    }
  }
}

TEST(WideMatcherPropertyTest, LabelOrderAgreesWithWideOracle) {
  Rng rng(0x71de'0003);
  for (const int views : {31, 33, 64, 65}) {
    std::vector<int> arities;
    cq::Schema schema = RandomSchema(&rng, 2, &arities);
    ViewCatalog catalog(&schema);
    BoundaryCatalog(&rng, &catalog, arities, views);
    LabelingPipeline pipeline(&catalog);
    LabelerPipeline oracle(&catalog);
    std::vector<ConjunctiveQuery> pool;
    for (int i = 0; i < 24; ++i) pool.push_back(RandomQuery(&rng, arities));
    for (size_t a = 0; a < pool.size(); ++a) {
      for (size_t b = 0; b < pool.size(); ++b) {
        EXPECT_EQ(pipeline.Label(pool[a]).Leq(pipeline.Label(pool[b])),
                  oracle.LabelWide(pool[a]).Leq(oracle.LabelWide(pool[b])))
            << "views=" << views << " pair (" << a << ", " << b << ")";
      }
    }
  }
}

// Set-based oracle of the §6.2 decision: atom ⪯ Wi iff ℓ+(atom) ∩ Wi ≠ ∅,
// computed straight from view-id sets with no bit packing anywhere.
uint64_t OracleAllowedPartitions(const ViewCatalog& catalog,
                                 const std::vector<policy::Partition>& parts,
                                 const ConjunctiveQuery& query,
                                 uint64_t candidates) {
  for (const AtomPattern& atom : Dissect(query)) {
    std::set<int> plus;
    for (int view_id : catalog.ViewsOfRelation(atom.relation)) {
      if (rewriting::AtomRewritable(atom, catalog.view(view_id).pattern)) {
        plus.insert(view_id);
      }
    }
    uint64_t next = 0;
    for (size_t p = 0; p < parts.size(); ++p) {
      if ((candidates & (1ULL << p)) == 0) continue;
      for (int view_id : parts[p].view_ids) {
        if (plus.contains(view_id)) {
          next |= 1ULL << p;
          break;
        }
      }
    }
    candidates = next;
    if (candidates == 0) break;
  }
  return candidates;
}

TEST(WideMatcherPropertyTest, MonitorDecisionsMatchSetOracleBeyondPackedEdge) {
  Rng rng(0x71de'0004);
  for (const int views : {33, 65, 128}) {
    std::vector<int> arities;
    cq::Schema schema = RandomSchema(&rng, 2, &arities);
    ViewCatalog catalog(&schema);
    BoundaryCatalog(&rng, &catalog, arities, views);
    // Random partitions drawing freely from the whole catalog — most picks
    // land on views with bit ≥ 32, exactly the formerly excluded range.
    std::vector<policy::Partition> partitions;
    const int num_partitions = 2 + static_cast<int>(rng.Below(4));
    for (int p = 0; p < num_partitions; ++p) {
      policy::Partition part;
      part.name = "p" + std::to_string(p);
      std::set<int> ids;
      const int elements = 3 + static_cast<int>(rng.Below(12));
      for (int e = 0; e < elements; ++e) {
        ids.insert(static_cast<int>(rng.Below(catalog.size())));
      }
      part.view_ids.assign(ids.begin(), ids.end());
      partitions.push_back(std::move(part));
    }
    auto policy = policy::SecurityPolicy::Compile(catalog, partitions);
    ASSERT_TRUE(policy.ok());

    LabelingPipeline pipeline(&catalog);
    policy::ReferenceMonitor monitor(&*policy);
    policy::PrincipalState state = monitor.InitialState();
    uint64_t oracle_state = policy->AllPartitionsMask();
    policy::PolicyStore store(schema.NumRelations());
    ASSERT_TRUE(store.AddPrincipal(*policy).ok());

    for (int i = 0; i < 120; ++i) {
      const ConjunctiveQuery query = RandomQuery(&rng, arities);
      const DisclosureLabel label = pipeline.Label(query);
      const uint64_t oracle_surviving =
          OracleAllowedPartitions(catalog, partitions, query, oracle_state);
      const bool expected = oracle_surviving != 0;
      EXPECT_EQ(monitor.Submit(&state, label), expected)
          << "views=" << views << " query " << i;
      EXPECT_EQ(store.Submit(0, label), expected);
      if (expected) oracle_state = oracle_surviving;
      ASSERT_EQ(state.consistent, oracle_state);
      ASSERT_EQ(store.ConsistentPartitions(0), oracle_state);
    }
  }
}

TEST(WideMatcherPropertyTest, RedundantPartitionAnalysisSeesHighBitViews) {
  // Regression: partition dominance must compare full mask words, not the
  // packed low 32 bits — a partition whose only view sits at bit ≥ 32 used
  // to read as all-zero and be reported redundant.
  Rng rng(0x71de'0006);
  std::vector<int> arities;
  cq::Schema schema = RandomSchema(&rng, 1, &arities);
  ViewCatalog catalog(&schema);
  BoundaryCatalog(&rng, &catalog, arities, 40);
  const auto& ids = catalog.ViewsOfRelation(0);
  auto policy = policy::SecurityPolicy::Compile(
      catalog, {{"high-bit-only", {ids[35]}}, {"low-bit-only", {ids[0]}}});
  ASSERT_TRUE(policy.ok());
  // Neither partition's view set contains the other's, so neither is
  // redundant; seeing bit 35 as empty would flag "high-bit-only".
  EXPECT_TRUE(policy::FindRedundantPartitions(*policy).empty());
}

TEST(WideMatcherPropertyTest, WarmWideKernelsAreAllocationFree) {
  Rng rng(0x71de'0005);
  std::vector<int> arities;
  cq::Schema schema = RandomSchema(&rng, 2, &arities);
  ViewCatalog catalog(&schema);
  BoundaryCatalog(&rng, &catalog, arities, 128);
  const CompiledCatalogMatcher matcher =
      CompiledCatalogMatcher::Compile(catalog);
  ASSERT_EQ(matcher.max_mask_words(), 2);

  std::vector<AtomPattern> patterns;
  for (int i = 0; i < 16; ++i) {
    const int relation = static_cast<int>(rng.Below(arities.size()));
    patterns.push_back(RandomPattern(&rng, relation, arities[relation]));
  }
  // Warm: a caller-owned mask buffer sized once to max_mask_words, and a
  // reusable WideAtomLabel whose vector is grown by the first evaluation.
  std::vector<uint64_t> buffer(
      static_cast<size_t>(matcher.max_mask_words()), 0);
  WideAtomLabel reused;
  std::vector<std::vector<uint64_t>> expected;
  for (const AtomPattern& pattern : patterns) {
    matcher.MatchMaskWords(pattern, buffer.data());
    expected.push_back(buffer);
    matcher.MatchWideAtom(pattern, &reused);
  }

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int rep = 0; rep < 20; ++rep) {
    for (size_t i = 0; i < patterns.size(); ++i) {
      matcher.MatchMaskWords(patterns[i], buffer.data());
      ASSERT_EQ(buffer, expected[i]);
      matcher.MatchWideAtom(patterns[i], &reused);
      ASSERT_EQ(reused.relation, patterns[i].relation);
    }
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "warm MatchMaskWords / MatchWideAtom must not allocate";
}

}  // namespace
}  // namespace fdc::label
