// Serving front end acceptance suite.
//
// Three layers of guarantees:
//   1. Wire safety: randomized frame round-trips (including delivery split
//      across arbitrary read boundaries), plus malformed-input hardening —
//      truncated, oversized, garbage-magic, reserved-bit and random-byte
//      streams must produce clean protocol errors, never crashes or reads
//      past the buffer (the CI ASan+UBSan job runs this suite).
//   2. Decision fidelity: decisions served over a real socket are
//      bit-identical to submitting the same per-principal sequences
//      directly against a twin DisclosureEngine — including the epoch
//      carried in each response across a mid-stream UpdatePolicy.
//   3. Engine coalescing: DisclosureEngine::SubmitCoalesced (the server's
//      entry point) matches per-request Submit exactly for interleaved
//      multi-principal batches.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/disclosure_engine.h"
#include "engine/stats_json.h"
#include "server/byte_queue.h"
#include "server/client.h"
#include "server/disclosure_server.h"
#include "server/protocol.h"
#include "test_util.h"
#include "cq/printer.h"
#include "workload/policy_generator.h"

namespace fdc::server {
namespace {

using test::FbFixture;
using test::RandomWorkload;

// --- wire safety ---------------------------------------------------------

std::string RandomText(Rng* rng, size_t max_len) {
  std::string s(rng->Below(max_len + 1), '\0');
  for (char& c : s) c = static_cast<char>('a' + rng->Below(26));
  return s;
}

TEST(ProtocolTest, RandomFramesRoundTripAcrossSplitReads) {
  Rng rng(0x50c4e7ULL);
  for (int iter = 0; iter < 200; ++iter) {
    // Encode a random frame sequence into one stream.
    struct Expected {
      FrameType type;
      uint8_t flags;
      std::string payload;
    };
    std::string stream;
    std::vector<Expected> expected;
    const int frames = 1 + static_cast<int>(rng.Below(8));
    for (int i = 0; i < frames; ++i) {
      const size_t before = stream.size();
      switch (rng.Below(9)) {
        case 0:
          AppendHello(&stream, RandomText(&rng, 64));
          break;
        case 1:
          AppendHelloAck(&stream, rng.Next(), kMaxPayload);
          break;
        case 2:
          AppendRegisterTemplate(&stream,
                                 static_cast<uint32_t>(rng.Below(1000)),
                                 RandomText(&rng, 200));
          break;
        case 3:
          AppendSubmit(&stream, static_cast<uint32_t>(rng.Below(1000)),
                       rng.Below(2) == 0);
          break;
        case 4:
          AppendSubmitText(&stream, RandomText(&rng, 200),
                           rng.Below(2) == 0);
          break;
        case 5:
          AppendDecision(&stream, rng.Below(2) == 0, rng.Next(),
                         RandomText(&rng, 100));
          break;
        case 6:
          AppendStatsJson(&stream, RandomText(&rng, 300));
          break;
        case 7:
          AppendPong(&stream, rng.Next());
          break;
        default:
          AppendError(&stream, ErrorCode::kParseError,
                      static_cast<uint32_t>(rng.Below(100)),
                      RandomText(&rng, 80));
          break;
      }
      const uint8_t* frame_bytes =
          reinterpret_cast<const uint8_t*>(stream.data()) + before;
      expected.push_back(
          {static_cast<FrameType>(frame_bytes[4]), frame_bytes[5],
           stream.substr(before + kFrameHeaderSize)});
    }

    // Deliver the stream in random-sized chunks; decode as the server
    // does: a ByteQueue fed incrementally, frames peeled off the head.
    ByteQueue q;
    size_t delivered = 0;
    size_t decoded = 0;
    while (decoded < expected.size()) {
      FrameView frame;
      DecodeResult r = DecodeFrame(q.data(), q.size(), &frame);
      ASSERT_NE(r.status, DecodeStatus::kError);
      if (r.status == DecodeStatus::kFrame) {
        const Expected& e = expected[decoded];
        EXPECT_EQ(frame.type, e.type);
        EXPECT_EQ(frame.flags, e.flags);
        EXPECT_EQ(std::string(reinterpret_cast<const char*>(
                                  frame.payload.data()),
                              frame.payload.size()),
                  e.payload);
        q.Consume(r.consumed);
        ++decoded;
        continue;
      }
      ASSERT_LT(delivered, stream.size()) << "decoder starved";
      const size_t chunk =
          std::min(stream.size() - delivered, 1 + rng.Below(13));
      q.Append(stream.data() + delivered, chunk);
      delivered += chunk;
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST(ProtocolTest, MalformedEnvelopesAreCleanErrors) {
  FrameView frame;

  // Truncated header: need more, never an error.
  uint8_t header[kFrameHeaderSize] = {0};
  for (size_t n = 0; n < kFrameHeaderSize; ++n) {
    EXPECT_EQ(DecodeFrame(header, n, &frame).status, DecodeStatus::kNeedMore);
  }

  // Oversized length — including values that would overflow a 32-bit
  // total — must fail before any payload arrives.
  for (uint32_t len : {kMaxPayload + 1, 0x7fffffffu, 0xffffffffu}) {
    uint8_t buf[kFrameHeaderSize];
    PutU32(buf, len);
    buf[4] = static_cast<uint8_t>(FrameType::kPing);
    buf[5] = 0;
    PutU16(buf + 6, 0);
    DecodeResult r = DecodeFrame(buf, sizeof(buf), &frame);
    EXPECT_EQ(r.status, DecodeStatus::kError);
    EXPECT_EQ(r.error, ErrorCode::kOversizedFrame);
  }

  // Nonzero reserved bytes.
  {
    uint8_t buf[kFrameHeaderSize];
    PutU32(buf, 0);
    buf[4] = static_cast<uint8_t>(FrameType::kPing);
    buf[5] = 0;
    PutU16(buf + 6, 7);
    DecodeResult r = DecodeFrame(buf, sizeof(buf), &frame);
    EXPECT_EQ(r.status, DecodeStatus::kError);
    EXPECT_EQ(r.error, ErrorCode::kMalformedFrame);
  }

  // Unknown frame types (14 is the first id past kGoingAway).
  for (uint8_t type : {uint8_t{0}, uint8_t{14}, uint8_t{200}}) {
    uint8_t buf[kFrameHeaderSize];
    PutU32(buf, 0);
    buf[4] = type;
    buf[5] = 0;
    PutU16(buf + 6, 0);
    DecodeResult r = DecodeFrame(buf, sizeof(buf), &frame);
    EXPECT_EQ(r.status, DecodeStatus::kError);
    EXPECT_EQ(r.error, ErrorCode::kUnknownType);
  }
}

// Random byte soup through the decoder and every payload parser: the only
// acceptable outcomes are kFrame/kNeedMore/kError (and parser false) —
// never a crash or an out-of-bounds read (ASan+UBSan job enforces that).
TEST(ProtocolTest, FuzzedBytesNeverCrashDecoderOrParsers) {
  Rng rng(0xf022ULL);
  for (int iter = 0; iter < 3000; ++iter) {
    std::string bytes(rng.Below(64), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.Next());
    // Bias half the inputs toward valid-looking headers so the payload
    // parsers actually run.
    if (bytes.size() >= kFrameHeaderSize && rng.Below(2) == 0) {
      PutU32(reinterpret_cast<uint8_t*>(bytes.data()),
             static_cast<uint32_t>(rng.Below(bytes.size() + 4)));
      bytes[4] = static_cast<char>(1 + rng.Below(13));
      bytes[6] = bytes[7] = 0;
    }
    const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
    FrameView frame;
    DecodeResult r = DecodeFrame(data, bytes.size(), &frame);
    if (r.status == DecodeStatus::kFrame) {
      HelloPayload hello;
      DecisionPayload decision;
      ErrorPayload error;
      uint32_t id;
      std::string_view text;
      (void)ParseHello(frame.payload, &hello);
      (void)ParseDecision(frame.payload, &decision);
      (void)ParseError(frame.payload, &error);
      (void)ParseTemplateId(frame.payload, &id, &text);
    }
  }
}

// --- tiny JSON validator (for the /stats satellite) ----------------------

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Validate() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '"') return String();
    if (c == '-' || (c >= '0' && c <= '9')) return Number();
    return Literal("true") || Literal("false") || Literal("null");
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool String() {
    if (!Expect('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    return Expect('"');
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool Peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Expect(char c) { return Peek(c); }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(StatsJsonTest, EngineStatsSerializeToValidJson) {
  FbFixture fb;
  engine::DisclosureEngine engine(
      /*db=*/nullptr, &fb.catalog,
      workload::PolicyGenerator(&fb.catalog, {}, 11).Next());
  const auto pool = RandomWorkload(&fb.schema, 2, 50, 0x57a75ULL);
  for (const auto& q : pool) (void)engine.Submit("app", q);

  const std::string json = engine::StatsToJson(engine.Stats());
  EXPECT_TRUE(JsonValidator(json).Validate()) << json;
  for (const char* key :
       {"\"epoch\"", "\"decisions\"", "\"submitted\"", "\"labeler\"",
        "\"interner\"", "\"containment_cache\"", "\"simd_isa\"",
        "\"shadow\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(StatsJsonTest, JsonEscapeHandlesHostileInput) {
  EXPECT_EQ(engine::JsonEscape("plain ascii 123"), "plain ascii 123");
  EXPECT_EQ(engine::JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(engine::JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(engine::JsonEscape("a\nb\tc\rd\be\ff"),
            "a\\nb\\tc\\rd\\be\\ff");
  EXPECT_EQ(engine::JsonEscape(std::string_view("\x00\x01\x1f", 3)),
            "\\u0000\\u0001\\u001f");
  // A name crafted to break out of the string and forge a sibling key.
  EXPECT_EQ(engine::JsonEscape("\",\"accepted\":999999,\"x\":\""),
            "\\\",\\\"accepted\\\":999999,\\\"x\\\":\\\"");
}

TEST(StatsJsonTest, JsonEscapeRejectsInvalidUtf8) {
  // Valid UTF-8 passes through untouched: 2-, 3-, and 4-byte sequences.
  EXPECT_EQ(engine::JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
  EXPECT_EQ(engine::JsonEscape("\xe2\x82\xac"), "\xe2\x82\xac");  // €
  EXPECT_EQ(engine::JsonEscape("\xf0\x9f\x94\x92"),
            "\xf0\x9f\x94\x92");  // 🔒
  // Invalid bytes become \u00XX escapes so the document stays RFC 8259
  // valid even when the name came out of an arbitrary artifact blob.
  EXPECT_EQ(engine::JsonEscape("\xff"), "\\u00ff");        // never-valid byte
  EXPECT_EQ(engine::JsonEscape("\x80meh"), "\\u0080meh");  // lone continuation
  EXPECT_EQ(engine::JsonEscape("\xc3"), "\\u00c3");        // truncated 2-byte
  EXPECT_EQ(engine::JsonEscape("\xc3x"), "\\u00c3x");      // bad continuation
  EXPECT_EQ(engine::JsonEscape("\xc0\xaf"), "\\u00c0\\u00af");  // overlong '/'
  EXPECT_EQ(engine::JsonEscape("\xe0\x80\x80"),
            "\\u00e0\\u0080\\u0080");  // overlong 3-byte
  EXPECT_EQ(engine::JsonEscape("\xed\xa0\x80"),
            "\\u00ed\\u00a0\\u0080");  // UTF-16 surrogate U+D800
  EXPECT_EQ(engine::JsonEscape("\xf4\x90\x80\x80"),
            "\\u00f4\\u0090\\u0080\\u0080");  // beyond U+10FFFF
  EXPECT_EQ(engine::JsonEscape("\xf0\x9f\x94"), "\\u00f0\\u009f\\u0094");
}

TEST(StatsJsonTest, HostileShadowPolicyNameStaysValidJson) {
  FbFixture fb;
  workload::PolicyGenerator gen(&fb.catalog, {}, 11);
  engine::DisclosureEngine engine(/*db=*/nullptr, &fb.catalog, gen.Next());
  // Operator-supplied shadow-policy name with every class of hostile
  // character: quote, backslash, newline, raw control byte.
  // (split literal: "\x01b" would greedily parse as one 0x1b escape)
  engine.SetShadowPolicy(gen.Next(),
                         std::string("evil\"name\\with\nbad\x01" "bytes"));
  const std::string json = engine::StatsToJson(engine.Stats());
  EXPECT_TRUE(JsonValidator(json).Validate()) << json;
  EXPECT_NE(json.find("\"policy_name\":\"evil\\\"name\\\\with\\nbad"
                      "\\u0001bytes\""),
            std::string::npos)
      << json;
}

// --- end-to-end over a real socket ---------------------------------------

struct ServerFixture {
  FbFixture fb;
  policy::SecurityPolicy policy;
  engine::DisclosureEngine engine;
  DisclosureServer server;

  explicit ServerFixture(uint64_t policy_seed = 3, ServerOptions opts = {})
      : policy([&] {
          workload::PolicyOptions popts;
          popts.max_partitions = 5;
          popts.max_elements_per_partition = 15;
          return workload::PolicyGenerator(&fb.catalog, popts, policy_seed)
              .Next();
        }()),
        engine(/*db=*/nullptr, &fb.catalog, policy),
        server(&engine, opts) {
    Status s = server.Start();
    if (!s.ok()) {
      ADD_FAILURE() << s.ToString();
      std::abort();
    }
  }
  ~ServerFixture() { server.Stop(); }
};

// The tentpole differential: socket decisions (template path and text
// path, pipelined and call/response) are bit-identical to a twin engine
// driven directly, including the epoch in every response across a
// mid-stream UpdatePolicy.
TEST(ServerEndToEndTest, SocketDecisionsMatchDirectEngine) {
  ServerFixture fx;
  // Twin engine fed the exact same per-principal sequences directly.
  engine::DisclosureEngine direct(/*db=*/nullptr, &fx.fb.catalog, fx.policy);

  constexpr int kPrincipals = 4;
  constexpr int kQueries = 240;
  const auto pool = RandomWorkload(&fx.fb.schema, 2, 60, 0xd1ffULL);

  std::vector<BlockingClient> clients(kPrincipals);
  for (int p = 0; p < kPrincipals; ++p) {
    ASSERT_TRUE(clients[p]
                    .Connect("127.0.0.1", fx.server.port(),
                             "app-" + std::to_string(p))
                    .ok());
    for (size_t t = 0; t < pool.size(); ++t) {
      ASSERT_TRUE(clients[p]
                      .RegisterTemplate(static_cast<uint32_t>(t),
                                        cq::ToDatalog(pool[t], fx.fb.schema))
                      .ok());
    }
  }

  // Second policy for the mid-stream epoch bump.
  workload::PolicyOptions popts;
  popts.max_partitions = 4;
  popts.max_elements_per_partition = 12;
  policy::SecurityPolicy policy_b =
      workload::PolicyGenerator(&fx.fb.catalog, popts, 99).Next();

  Rng rng(0x5e11ULL);
  for (int i = 0; i < kQueries; ++i) {
    if (i == kQueries / 2) {
      fx.engine.UpdatePolicy(policy_b);
      direct.UpdatePolicy(policy_b);
    }
    const int p = static_cast<int>(rng.Below(kPrincipals));
    const size_t t = rng.Below(pool.size());
    const std::string principal = "app-" + std::to_string(p);

    ClientResponse resp;
    if (rng.Below(4) == 0) {
      // Text path: parsed server-side per request.
      ASSERT_TRUE(clients[p]
                      .SubmitText(cq::ToDatalog(pool[t], fx.fb.schema), &resp)
                      .ok());
    } else {
      ASSERT_TRUE(clients[p].Submit(static_cast<uint32_t>(t), &resp).ok());
    }
    ASSERT_EQ(resp.type, FrameType::kDecision);

    const uint64_t direct_epoch = direct.Snapshot()->epoch();
    const bool direct_decision = direct.Submit(principal, pool[t]);
    EXPECT_EQ(resp.allow, direct_decision) << "divergence at query " << i;
    EXPECT_EQ(resp.epoch, direct_epoch) << "epoch drift at query " << i;
  }
}

// Pipelining many submits into one flush exercises the coalescing layer:
// responses come back in order, decisions still match the twin engine, and
// the server really did batch (fewer engine passes than decisions).
TEST(ServerEndToEndTest, PipelinedSubmitsCoalesceAndPreserveOrder) {
  ServerFixture fx(/*policy_seed=*/17);
  engine::DisclosureEngine direct(/*db=*/nullptr, &fx.fb.catalog, fx.policy);

  const auto pool = RandomWorkload(&fx.fb.schema, 2, 32, 0x919eULL);
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.server.port(), "pipeline").ok());
  for (size_t t = 0; t < pool.size(); ++t) {
    ASSERT_TRUE(client
                    .RegisterTemplate(static_cast<uint32_t>(t),
                                      cq::ToDatalog(pool[t], fx.fb.schema))
                    .ok());
  }

  constexpr int kRounds = 4;
  constexpr int kPerRound = 128;
  Rng rng(0xabcULL);
  for (int round = 0; round < kRounds; ++round) {
    std::vector<size_t> order;
    for (int i = 0; i < kPerRound; ++i) {
      order.push_back(rng.Below(pool.size()));
      client.QueueSubmit(static_cast<uint32_t>(order.back()));
    }
    ASSERT_TRUE(client.Flush().ok());
    for (int i = 0; i < kPerRound; ++i) {
      ClientResponse resp;
      ASSERT_TRUE(client.ReadResponse(&resp).ok());
      ASSERT_EQ(resp.type, FrameType::kDecision);
      EXPECT_EQ(resp.allow, direct.Submit("pipeline", pool[order[i]]))
          << "round " << round << " index " << i;
    }
  }

  const DisclosureServer::Stats stats = fx.server.stats();
  EXPECT_EQ(stats.decisions, kRounds * kPerRound);
  EXPECT_LT(stats.coalesced_batches, stats.decisions);
  EXPECT_GT(stats.max_coalesced_batch, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(ServerEndToEndTest, ProtocolErrorsAreScopedCorrectly) {
  ServerFixture fx;

  // Fatal: submit before hello closes the connection.
  {
    BlockingClient probe;
    // Hand-rolled: connect without the Hello handshake.
    BlockingClient raw;
    ASSERT_TRUE(raw.Connect("127.0.0.1", fx.server.port(), "x").ok());
    // A fatal error: duplicate hello.
    ClientResponse resp;
    ASSERT_TRUE(raw.SubmitText("nonsense", &resp).ok());
    EXPECT_EQ(resp.type, FrameType::kError);
    EXPECT_EQ(resp.error, ErrorCode::kParseError);  // non-fatal
    // Unknown template id is fatal: server answers kError then closes.
    ASSERT_TRUE(raw.Submit(777, &resp).ok());
    EXPECT_EQ(resp.type, FrameType::kError);
    EXPECT_EQ(resp.error, ErrorCode::kUnknownTemplate);
    uint64_t epoch;
    EXPECT_FALSE(raw.Ping(&epoch).ok());  // connection is gone
  }

  // Non-fatal kParseError keeps the connection and per-connection order.
  {
    BlockingClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", fx.server.port(), "scoped").ok());
    const auto pool = RandomWorkload(&fx.fb.schema, 2, 1, 0x1ULL);
    const std::string good = cq::ToDatalog(pool[0], fx.fb.schema);
    c.QueueSubmitText(good);
    c.QueueSubmitText("Q(x) :- NoSuchRelation(x)");
    c.QueueSubmitText(good);
    ASSERT_TRUE(c.Flush().ok());
    ClientResponse r1, r2, r3;
    ASSERT_TRUE(c.ReadResponse(&r1).ok());
    ASSERT_TRUE(c.ReadResponse(&r2).ok());
    ASSERT_TRUE(c.ReadResponse(&r3).ok());
    EXPECT_EQ(r1.type, FrameType::kDecision);
    EXPECT_EQ(r2.type, FrameType::kError);
    EXPECT_EQ(r2.error, ErrorCode::kParseError);
    EXPECT_EQ(r3.type, FrameType::kDecision);
    uint64_t epoch = 0;
    EXPECT_TRUE(c.Ping(&epoch).ok());  // still alive
  }

  // Bad magic in the hello is rejected.
  {
    BlockingClient c;
    Status s = c.Connect("127.0.0.1", fx.server.port(), "");
    EXPECT_FALSE(s.ok());  // empty principal → kBadPrincipal
  }
}

TEST(ServerEndToEndTest, ServedStatsAreValidJsonAndPingReportsEpoch) {
  ServerFixture fx;
  BlockingClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", fx.server.port(), "statsapp").ok());
  const auto pool = RandomWorkload(&fx.fb.schema, 2, 4, 0x77ULL);
  for (const auto& q : pool) {
    ClientResponse resp;
    ASSERT_TRUE(c.SubmitText(cq::ToDatalog(q, fx.fb.schema), &resp).ok());
  }

  std::string json;
  ASSERT_TRUE(c.StatsJson(&json).ok());
  EXPECT_TRUE(JsonValidator(json).Validate()) << json;
  EXPECT_NE(json.find("\"submitted\":4"), std::string::npos) << json;

  uint64_t epoch = 0;
  ASSERT_TRUE(c.Ping(&epoch).ok());
  EXPECT_EQ(epoch, fx.engine.Snapshot()->epoch());

  // Epoch visible over the wire tracks UpdatePolicy.
  fx.engine.UpdatePolicy(fx.policy);
  ASSERT_TRUE(c.Ping(&epoch).ok());
  EXPECT_EQ(epoch, 2u);
}

// Multi-worker path (SO_REUSEPORT or shared accept): many connections land
// on different workers and all serve correctly.
TEST(ServerEndToEndTest, MultiWorkerServesManyConnections) {
  ServerOptions opts;
  opts.workers = 2;
  ServerFixture fx(/*policy_seed=*/5, opts);
  const auto pool = RandomWorkload(&fx.fb.schema, 2, 8, 0x22ULL);

  constexpr int kClients = 8;
  std::vector<BlockingClient> clients(kClients);
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(clients[i]
                    .Connect("127.0.0.1", fx.server.port(),
                             "mw-" + std::to_string(i))
                    .ok());
  }
  for (int round = 0; round < 16; ++round) {
    for (int i = 0; i < kClients; ++i) {
      ClientResponse resp;
      ASSERT_TRUE(clients[i]
                      .SubmitText(cq::ToDatalog(pool[round % pool.size()],
                                                fx.fb.schema),
                                  &resp)
                      .ok());
      ASSERT_EQ(resp.type, FrameType::kDecision);
    }
  }
  const DisclosureServer::Stats stats = fx.server.stats();
  EXPECT_EQ(stats.connections_accepted, kClients);
  EXPECT_EQ(stats.decisions, 16u * kClients);
}

// --- engine-level coalescing oracle --------------------------------------

TEST(SubmitCoalescedTest, MatchesSequentialSubmitExactly) {
  FbFixture fb;
  workload::PolicyOptions popts;
  popts.max_partitions = 5;
  popts.max_elements_per_partition = 15;
  for (uint64_t seed : {0x1ULL, 0xabcdULL}) {
    policy::SecurityPolicy policy =
        workload::PolicyGenerator(&fb.catalog, popts, seed).Next();
    engine::DisclosureEngine coalesced(/*db=*/nullptr, &fb.catalog, policy);
    engine::DisclosureEngine sequential(/*db=*/nullptr, &fb.catalog, policy);

    const auto pool = RandomWorkload(&fb.schema, 2, 64, seed ^ 0x777);
    Rng rng(seed + 5);
    std::vector<std::string> principals;
    for (int p = 0; p < 5; ++p) principals.push_back("p" + std::to_string(p));

    int applied = 0;
    while (applied < 400) {
      // Random interleaved cross-principal batch, like one epoll wake.
      const int batch = 1 + static_cast<int>(rng.Below(48));
      std::vector<engine::DisclosureEngine::SubmitRequest> requests;
      for (int i = 0; i < batch; ++i) {
        requests.push_back({principals[rng.Below(principals.size())],
                            &pool[rng.Below(pool.size())]});
      }
      std::vector<bool> decisions;
      std::vector<uint64_t> epochs;
      coalesced.SubmitCoalesced(requests, &decisions, &epochs);
      ASSERT_EQ(decisions.size(), requests.size());
      ASSERT_EQ(epochs.size(), requests.size());
      for (int i = 0; i < batch; ++i) {
        const bool expect = sequential.Submit(
            std::string(requests[i].principal), *requests[i].query);
        ASSERT_EQ(decisions[i], expect)
            << "divergence at offset " << applied + i << " seed " << seed;
        EXPECT_EQ(epochs[i], sequential.Snapshot()->epoch());
      }
      applied += batch;
    }

    // Aggregate accept/refuse counters agree too.
    const auto a = coalesced.Stats();
    const auto b = sequential.Stats();
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.refused, b.refused);
    EXPECT_EQ(a.submitted, b.submitted);
  }
}

}  // namespace
}  // namespace fdc::server
