#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "storage/database.h"
#include "storage/evaluator.h"
#include "storage/guarded_database.h"
#include "test_util.h"

namespace fdc::storage {
namespace {

using cq::Schema;

// Loads the Figure 1 dataset.
class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = test::MakePaperSchema();
    db_ = std::make_unique<Database>(&schema_);
    ASSERT_TRUE(db_->Insert("Meetings", {"9", "Jim"}).ok());
    ASSERT_TRUE(db_->Insert("Meetings", {"10", "Cathy"}).ok());
    ASSERT_TRUE(db_->Insert("Meetings", {"12", "Bob"}).ok());
    ASSERT_TRUE(db_->Insert("Contacts", {"Jim", "jim@e.com", "Manager"}).ok());
    ASSERT_TRUE(
        db_->Insert("Contacts", {"Cathy", "cathy@e.com", "Intern"}).ok());
    ASSERT_TRUE(
        db_->Insert("Contacts", {"Bob", "bob@e.com", "Consultant"}).ok());
  }

  std::vector<Tuple> Eval(const std::string& text) {
    auto result = Evaluate(*db_, test::Q(text, schema_));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : std::vector<Tuple>{};
  }

  Schema schema_;
  std::unique_ptr<Database> db_;
};

TEST_F(StorageTest, RelationDedupes) {
  EXPECT_EQ(db_->relation(0)->size(), 3u);
  ASSERT_TRUE(db_->Insert("Meetings", {"9", "Jim"}).ok());
  EXPECT_EQ(db_->relation(0)->size(), 3u);  // set semantics
}

TEST_F(StorageTest, InsertValidatesArity) {
  EXPECT_FALSE(db_->Insert("Meetings", {"9"}).ok());
  EXPECT_FALSE(db_->Insert("Nope", {"9", "x"}).ok());
}

TEST_F(StorageTest, FullScan) {
  EXPECT_EQ(Eval("Q(x, y) :- Meetings(x, y)").size(), 3u);
}

TEST_F(StorageTest, Q1SelectsCathyMeetings) {
  // Figure 1's Q1.
  std::vector<Tuple> rows = Eval("Q1(x) :- Meetings(x, 'Cathy')");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], Tuple{"10"});
}

TEST_F(StorageTest, Q2JoinsMeetingsWithInterns) {
  // Figure 1's Q2: meetings with interns — Cathy at 10.
  std::vector<Tuple> rows =
      Eval("Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], Tuple{"10"});
}

TEST_F(StorageTest, BooleanQueries) {
  EXPECT_EQ(Eval("B() :- Meetings(x, y)").size(), 1u);           // true
  EXPECT_EQ(Eval("B() :- Meetings(x, 'Nobody')").size(), 0u);    // false
  EXPECT_EQ(Eval("B() :- Meetings(9, 'Jim')").size(), 1u);
}

TEST_F(StorageTest, RepeatedVariablesEnforceEquality) {
  ASSERT_TRUE(db_->Insert("Meetings", {"7", "7"}).ok());
  std::vector<Tuple> rows = Eval("Q(z) :- Meetings(z, z)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], Tuple{"7"});
}

TEST_F(StorageTest, ProjectionDeduplicates) {
  ASSERT_TRUE(db_->Insert("Meetings", {"9", "Cathy"}).ok());
  // Times 9 (twice, from (9,Jim) and (9,Cathy)), 10, 12: set semantics
  // collapses the duplicate.
  std::vector<Tuple> rows = Eval("Q(x) :- Meetings(x, y)");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(StorageTest, DuplicateHeadColumns) {
  std::vector<Tuple> rows = Eval("Q(x, x) :- Meetings(x, 'Jim')");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (Tuple{"9", "9"}));
}

TEST_F(StorageTest, EvaluateValidates) {
  cq::ConjunctiveQuery bad("Q", {}, {cq::Atom(99, {cq::Term::Var(0)})});
  EXPECT_FALSE(Evaluate(*db_, bad).ok());
}

// ---- Containment ⇒ answer-subset spot check ------------------------------

TEST_F(StorageTest, ContainmentImpliesAnswerSubset) {
  auto sub = test::Q("Q(x) :- Meetings(x, 'Cathy')", schema_);
  auto super = test::Q("Q(x) :- Meetings(x, y)", schema_);
  auto sub_rows = Evaluate(*db_, sub);
  auto super_rows = Evaluate(*db_, super);
  ASSERT_TRUE(sub_rows.ok() && super_rows.ok());
  for (const Tuple& t : *sub_rows) {
    EXPECT_NE(std::find(super_rows->begin(), super_rows->end(), t),
              super_rows->end());
  }
}

// ---- Guarded database end to end -------------------------------------------

class GuardedDatabaseTest : public StorageTest {
 protected:
  void SetUp() override {
    StorageTest::SetUp();
    catalog_ = std::make_unique<label::ViewCatalog>(&schema_);
    ASSERT_TRUE(catalog_->AddViewText("V1", "V1(x, y) :- Meetings(x, y)").ok());
    ASSERT_TRUE(catalog_->AddViewText("V2", "V2(x) :- Meetings(x, y)").ok());
    ASSERT_TRUE(
        catalog_->AddViewText("V3", "V3(x, y, z) :- Contacts(x, y, z)").ok());
    auto policy = policy::SecurityPolicy::Compile(
        *catalog_, {{"meetings_only", {catalog_->FindByName("V1")->id}},
                    {"contacts_only", {catalog_->FindByName("V3")->id}}});
    ASSERT_TRUE(policy.ok());
    policy_ =
        std::make_unique<policy::SecurityPolicy>(std::move(policy).value());
    guarded_ = std::make_unique<GuardedDatabase>(db_.get(), catalog_.get(),
                                                 policy_.get());
  }

  std::unique_ptr<label::ViewCatalog> catalog_;
  std::unique_ptr<policy::SecurityPolicy> policy_;
  std::unique_ptr<GuardedDatabase> guarded_;
};

TEST_F(GuardedDatabaseTest, AnswersAllowedQuery) {
  auto rows = guarded_->Query("app1", test::Q("Q(x) :- Meetings(x, y)",
                                              schema_));
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(GuardedDatabaseTest, ChineseWallAcrossQueries) {
  // First query locks the principal to the Meetings partition.
  ASSERT_TRUE(
      guarded_->Query("app1", test::Q("Q(x) :- Meetings(x, y)", schema_))
          .ok());
  auto refused = guarded_->Query(
      "app1", test::Q("Q(x) :- Contacts(x, y, z)", schema_));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kPolicyViolation);
  // A different principal is unaffected.
  EXPECT_TRUE(
      guarded_->Query("app2", test::Q("Q(x) :- Contacts(x, y, z)", schema_))
          .ok());
}

TEST_F(GuardedDatabaseTest, SqlFrontEnd) {
  auto rows = guarded_->QuerySql(
      "app3", "SELECT time FROM Meetings WHERE person = 'Cathy'");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], Tuple{"10"});
  EXPECT_FALSE(guarded_->QuerySql("app3", "SELECT nope FROM Meetings").ok());
}

TEST_F(GuardedDatabaseTest, ConsistentPartitionsTracksState) {
  EXPECT_EQ(guarded_->ConsistentPartitions("fresh"), 0b11u);
  ASSERT_TRUE(
      guarded_->Query("appX", test::Q("Q(x) :- Contacts(x, y, z)", schema_))
          .ok());
  EXPECT_EQ(guarded_->ConsistentPartitions("appX"), 0b10u);
}

TEST_F(GuardedDatabaseTest, ExplainExposesLabel) {
  label::DisclosureLabel label =
      guarded_->Explain(test::Q("Q(x) :- Meetings(x, y)", schema_));
  EXPECT_FALSE(label.top());
  EXPECT_EQ(label.size(), 1);
}

TEST_F(GuardedDatabaseTest, JoinQueryRefusedUnderEitherWall) {
  // Q2 needs both V1 and V3: above both partitions, refused immediately.
  auto refused = guarded_->Query(
      "app4",
      test::Q("Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')", schema_));
  EXPECT_FALSE(refused.ok());
}

TEST_F(GuardedDatabaseTest, ExplainQueryDiagnosesWithoutMutating) {
  ASSERT_TRUE(
      guarded_->Query("appE", test::Q("Q(x) :- Meetings(x, y)", schema_))
          .ok());
  const uint64_t before = guarded_->ConsistentPartitions("appE");
  policy::Explanation e = guarded_->ExplainQuery(
      "appE", test::Q("Q(x) :- Contacts(x, y, z)", schema_));
  EXPECT_FALSE(e.accepted);
  // The contacts partition was lost when the meetings query was answered.
  ASSERT_EQ(e.partitions.size(), 2u);
  EXPECT_TRUE(e.partitions[1].lost_earlier);
  // Explanation must not change monitor state.
  EXPECT_EQ(guarded_->ConsistentPartitions("appE"), before);
  // And a grantable query explains as accepted.
  policy::Explanation ok = guarded_->ExplainQuery(
      "appE", test::Q("Q(x, y) :- Meetings(x, y)", schema_));
  EXPECT_TRUE(ok.accepted);
}

}  // namespace
}  // namespace fdc::storage
