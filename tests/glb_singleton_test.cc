#include "label/glb_singleton.h"

#include <gtest/gtest.h>

#include "label/glb.h"
#include "order/rewriting_order.h"
#include "order/universe.h"
#include "rewriting/atom_rewriting.h"
#include "test_util.h"

namespace fdc::label {
namespace {

using cq::AtomPattern;
using cq::Schema;

class GlbSingletonTest : public ::testing::Test {
 protected:
  Schema schema_ = test::MakePaperSchema();

  std::optional<AtomPattern> Glb(const std::string& a, const std::string& b) {
    return GlbSingleton(test::P(a, schema_), test::P(b, schema_));
  }
};

// ---- Example 5.2: V6 ⊓ V7 = V9 ------------------------------------------

TEST_F(GlbSingletonTest, Example52ProjectionOverlap) {
  auto glb = Glb("V6(x, y) :- Contacts(x, y, z)",
                 "V7(x, z) :- Contacts(x, y, z)");
  ASSERT_TRUE(glb.has_value());
  EXPECT_EQ(*glb, test::P("V9(x) :- Contacts(x, y, z)", schema_));
}

// ---- Example 5.1: constant vs existential unification fails -------------

TEST_F(GlbSingletonTest, Example51ConstantVsScanIsBottom) {
  EXPECT_FALSE(
      Glb("V13() :- Meetings(9, 'Jim')", "V14() :- Meetings(x, y)")
          .has_value());
}

// ---- Example 5.3: forced equality on existentials is bottom -------------

TEST_F(GlbSingletonTest, Example53ForcedEqualityIsBottom) {
  EXPECT_FALSE(
      Glb("V14() :- Meetings(x, y)", "V15() :- Meetings(z, z)").has_value());
}

TEST_F(GlbSingletonTest, GenMguSucceedsWhereGlbRejects) {
  // The raw unifier produces [M(w_e, w_e)] for Example 5.3; the lower-bound
  // check is what rejects it.
  Schema& s = schema_;
  auto mgu = GenMgu(test::P("V14() :- Meetings(x, y)", s),
                    test::P("V15() :- Meetings(z, z)", s));
  ASSERT_TRUE(mgu.has_value());
  EXPECT_EQ(*mgu, test::P("G() :- Meetings(z, z)", s));
}

// ---- Figure 3: V2 ⊓ V4 = V5 ----------------------------------------------

TEST_F(GlbSingletonTest, ProjectionsMeetAtNonEmptiness) {
  auto glb = Glb("V2(x) :- Meetings(x, y)", "V4(y) :- Meetings(x, y)");
  ASSERT_TRUE(glb.has_value());
  EXPECT_EQ(*glb, test::P("V5() :- Meetings(x, y)", schema_));
}

TEST_F(GlbSingletonTest, GlbWithFullTableIsOtherView) {
  auto glb = Glb("V1(x, y) :- Meetings(x, y)", "V2(x) :- Meetings(x, y)");
  ASSERT_TRUE(glb.has_value());
  EXPECT_EQ(*glb, test::P("V2(x) :- Meetings(x, y)", schema_));
}

TEST_F(GlbSingletonTest, ConstantMeetsDistinguishedColumn) {
  // Full table ⊓ specific-tuple test: the tuple test.
  auto glb = Glb("V1(x, y) :- Meetings(x, y)", "V13() :- Meetings(9, 'Jim')");
  ASSERT_TRUE(glb.has_value());
  EXPECT_EQ(*glb, test::P("V13() :- Meetings(9, 'Jim')", schema_));
}

TEST_F(GlbSingletonTest, ConflictingConstantsAreBottom) {
  EXPECT_FALSE(
      Glb("A() :- Meetings(9, 'Jim')", "B() :- Meetings(10, 'Jim')")
          .has_value());
}

TEST_F(GlbSingletonTest, DifferentRelationsAreBottom) {
  EXPECT_FALSE(
      Glb("A(x) :- Meetings(x, y)", "B(x) :- Contacts(x, y, z)").has_value());
}

TEST_F(GlbSingletonTest, SelectionsOnDifferentColumns) {
  // σ_time=9 (π person) ⊓ σ_person=Jim (π time): unify to the tuple test.
  auto glb = Glb("A(y) :- Meetings(9, y)", "B(x) :- Meetings(x, 'Jim')");
  ASSERT_TRUE(glb.has_value());
  EXPECT_EQ(*glb, test::P("G() :- Meetings(9, 'Jim')", schema_));
}

// ---- Example 4.4: GLB identities over Contacts projections --------------

TEST_F(GlbSingletonTest, Example44Identities) {
  const AtomPattern v6 = test::P("V6(x, y) :- Contacts(x, y, z)", schema_);
  const AtomPattern v7 = test::P("V7(x, z) :- Contacts(x, y, z)", schema_);
  const AtomPattern v8 = test::P("V8(y, z) :- Contacts(x, y, z)", schema_);
  const AtomPattern v9 = test::P("V9(x) :- Contacts(x, y, z)", schema_);
  const AtomPattern v10 = test::P("V10(y) :- Contacts(x, y, z)", schema_);
  const AtomPattern v11 = test::P("V11(z) :- Contacts(x, y, z)", schema_);
  const AtomPattern v12 = test::P("V12() :- Contacts(x, y, z)", schema_);

  EXPECT_EQ(GlbSingleton(v6, v7), v9);
  EXPECT_EQ(GlbSingleton(v6, v8), v10);
  EXPECT_EQ(GlbSingleton(v7, v8), v11);
  // GLB({V6},{V7},{V8}) ≡ {V12}: fold pairwise.
  auto partial = GlbSingleton(v6, v7);
  ASSERT_TRUE(partial.has_value());
  EXPECT_EQ(GlbSingleton(*partial, v8), v12);
}

// ---- Order-theoretic properties (property suite) -------------------------

class GlbPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GlbPropertyTest, GlbIsCommutativeLowerBoundAndGreatest) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 80; ++trial) {
    const AtomPattern a = test::RandomPattern(&rng, 0, 3);
    const AtomPattern b = test::RandomPattern(&rng, 0, 3);
    auto ab = GlbSingleton(a, b);
    auto ba = GlbSingleton(b, a);
    // Commutativity (up to pattern normalization).
    EXPECT_EQ(ab.has_value(), ba.has_value());
    if (ab.has_value()) {
      EXPECT_EQ(*ab, *ba) << "a=" << a.Key() << " b=" << b.Key();
      // Lower bound: GLB ⪯ both inputs.
      EXPECT_TRUE(rewriting::AtomRewritable(*ab, a));
      EXPECT_TRUE(rewriting::AtomRewritable(*ab, b));
    }
    // Greatest: no sampled common lower bound lies strictly above the GLB.
    for (int probe = 0; probe < 20; ++probe) {
      const AtomPattern c = test::RandomPattern(&rng, 0, 3);
      if (rewriting::AtomRewritable(c, a) &&
          rewriting::AtomRewritable(c, b)) {
        ASSERT_TRUE(ab.has_value() &&
                    rewriting::AtomRewritable(c, *ab))
            << "common lower bound " << c.Key() << " not below GLB of "
            << a.Key() << " and " << b.Key();
      }
    }
  }
}

TEST_P(GlbPropertyTest, GlbIsIdempotent) {
  Rng rng(GetParam() ^ 0xfeed);
  for (int trial = 0; trial < 60; ++trial) {
    const AtomPattern a = test::RandomPattern(&rng, 0, 3);
    auto aa = GlbSingleton(a, a);
    ASSERT_TRUE(aa.has_value()) << a.Key();
    // a ⊓ a ≡ a.
    EXPECT_TRUE(rewriting::AtomRewritable(*aa, a));
    EXPECT_TRUE(rewriting::AtomRewritable(a, *aa));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlbPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

// ---- Set-level GLB --------------------------------------------------------

TEST(GlbSetsTest, PairwiseUnionSemantics) {
  cq::Schema schema = test::MakePaperSchema();
  order::Universe universe;
  const int v6 = universe.Add(test::P("V6(x, y) :- Contacts(x, y, z)", schema));
  const int v7 = universe.Add(test::P("V7(x, z) :- Contacts(x, y, z)", schema));
  const int v8 = universe.Add(test::P("V8(y, z) :- Contacts(x, y, z)", schema));

  order::ViewSet glb = GlbSets(&universe, {v6}, {v7, v8});
  // {V6} ⊓ {V7,V8} = {V9, V10}.
  const int v9 = universe.Find(test::P("V9(x) :- Contacts(x, y, z)", schema));
  const int v10 = universe.Find(test::P("V10(y) :- Contacts(x, y, z)", schema));
  ASSERT_GE(v9, 0);
  ASSERT_GE(v10, 0);
  EXPECT_EQ(glb, (order::ViewSet{v9, v10}));
}

TEST(GlbSetsTest, BottomContributionsVanish) {
  cq::Schema schema = test::MakePaperSchema();
  order::Universe universe;
  const int m = universe.Add(test::P("A() :- Meetings(9, 'Jim')", schema));
  const int n = universe.Add(test::P("B() :- Meetings(x, y)", schema));
  EXPECT_TRUE(GlbSets(&universe, {m}, {n}).empty());
}

TEST(GlbSetsTest, GlbManyFoldsLeft) {
  cq::Schema schema = test::MakePaperSchema();
  order::Universe universe;
  const int v6 = universe.Add(test::P("V6(x, y) :- Contacts(x, y, z)", schema));
  const int v7 = universe.Add(test::P("V7(x, z) :- Contacts(x, y, z)", schema));
  const int v8 = universe.Add(test::P("V8(y, z) :- Contacts(x, y, z)", schema));
  order::ViewSet glb = GlbMany(&universe, {{v6}, {v7}, {v8}});
  const int v12 = universe.Find(test::P("V12() :- Contacts(x, y, z)", schema));
  ASSERT_GE(v12, 0);
  EXPECT_EQ(glb, (order::ViewSet{v12}));
}

}  // namespace
}  // namespace fdc::label
