// The batched labeling/monitor pipeline must be decision-for-decision
// identical to the seed per-query path: LabelBatch vs LabelPacked on the
// §7.2 workload, SubmitBatch vs sequential Submit on random label streams,
// and the widened 64-partition monitor state.
#include <gtest/gtest.h>

#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "label/pipeline.h"
#include "policy/overprivilege.h"
#include "policy/reference_monitor.h"
#include "test_util.h"
#include "workload/policy_generator.h"
#include "workload/query_generator.h"

namespace fdc::label {
namespace {

using test::FbFixture;

std::vector<cq::ConjunctiveQuery> Workload(const cq::Schema* schema,
                                           int subqueries, int count,
                                           uint64_t seed) {
  return test::RandomWorkload(schema, subqueries, count, seed);
}

TEST(BatchPipelineTest, LabelAgreesWithLabelPacked) {
  FbFixture fb;
  LabelerPipeline seed_pipeline(&fb.catalog);
  LabelingPipeline pipeline(&fb.catalog);
  for (int subqueries = 1; subqueries <= 3; ++subqueries) {
    for (const auto& query :
         Workload(&fb.schema, subqueries, 200, 0xbeef + subqueries)) {
      DisclosureLabel expected = seed_pipeline.LabelPacked(query);
      DisclosureLabel got = pipeline.Label(query);
      EXPECT_EQ(got, expected);
    }
  }
  EXPECT_GT(pipeline.stats().label_misses, 0u);
}

TEST(BatchPipelineTest, LabelBatchAgreesAndDeduplicates) {
  FbFixture fb;
  LabelerPipeline seed_pipeline(&fb.catalog);
  LabelingPipeline pipeline(&fb.catalog);
  auto pool = Workload(&fb.schema, 2, 64, 0xf00d);
  // Repeat the pool so the batch has heavy structural duplication.
  std::vector<cq::ConjunctiveQuery> batch;
  for (int rep = 0; rep < 4; ++rep) {
    batch.insert(batch.end(), pool.begin(), pool.end());
  }
  const auto labels = pipeline.LabelBatch(batch);
  ASSERT_EQ(labels.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(labels[i], seed_pipeline.LabelPacked(batch[i])) << i;
  }
  // 4 repetitions of ≤64 structures: far fewer labels computed than queries.
  EXPECT_LE(pipeline.stats().label_misses, 64u);
  // Repeats of the batch reuse the persistent memo entirely.
  const uint64_t misses_before = pipeline.stats().label_misses;
  const auto again = pipeline.LabelBatch(batch);
  EXPECT_EQ(pipeline.stats().label_misses, misses_before);
  for (size_t i = 0; i < batch.size(); ++i) EXPECT_EQ(again[i], labels[i]);
}

TEST(BatchPipelineTest, AblatedModeBypassesCaches) {
  FbFixture fb;
  LabelingOptions options;
  options.ablate_interning = true;
  LabelingPipeline pipeline(&fb.catalog, nullptr, nullptr, {}, options);
  LabelerPipeline seed_pipeline(&fb.catalog);
  for (const auto& query : Workload(&fb.schema, 1, 50, 0xcafe)) {
    EXPECT_EQ(pipeline.Label(query), seed_pipeline.LabelPacked(query));
  }
  EXPECT_EQ(pipeline.stats().label_hits, 0u);
  EXPECT_EQ(pipeline.stats().label_misses, 0u);
}

TEST(BatchPipelineTest, SubmitBatchMatchesSequentialSubmit) {
  FbFixture fb;
  LabelingPipeline pipeline(&fb.catalog);
  workload::PolicyOptions policy_options;
  policy_options.max_partitions = 5;
  workload::PolicyGenerator policies(&fb.catalog, policy_options, 0x9090);

  for (int trial = 0; trial < 10; ++trial) {
    const policy::SecurityPolicy policy = policies.Next();
    policy::ReferenceMonitor monitor(&policy);
    auto queries = Workload(&fb.schema, 1, 128, 0xaaaa + trial);
    // Duplicate-heavy stream.
    const std::vector<cq::ConjunctiveQuery> prefix(queries.begin(),
                                                   queries.begin() + 64);
    queries.insert(queries.end(), prefix.begin(), prefix.end());
    const auto labels = pipeline.LabelBatch(queries);

    policy::PrincipalState sequential = monitor.InitialState();
    std::vector<bool> expected;
    expected.reserve(labels.size());
    for (const auto& label : labels) {
      expected.push_back(monitor.Submit(&sequential, label));
    }

    policy::PrincipalState batched = monitor.InitialState();
    const auto decisions = monitor.SubmitBatch(&batched, labels);
    EXPECT_EQ(decisions, expected);
    EXPECT_EQ(batched.consistent, sequential.consistent);
  }
}

TEST(BatchPipelineTest, MonitorSupportsUpTo64Partitions) {
  cq::Schema schema = test::MakePaperSchema();
  ViewCatalog catalog(&schema);
  auto v0 = catalog.AddViewText("scan", "V(x, y) :- Meetings(x, y)");
  auto v1 = catalog.AddViewText("times", "V(x) :- Meetings(x, y)");
  ASSERT_TRUE(v0.ok());
  ASSERT_TRUE(v1.ok());

  // 64 partitions: the first 63 hold only the narrow view, the last holds
  // the full scan. A scan query must be refused by all but partition 63.
  std::vector<policy::Partition> partitions;
  for (int i = 0; i < 63; ++i) {
    partitions.push_back({"narrow" + std::to_string(i), {*v1}});
  }
  partitions.push_back({"wide", {*v0}});
  auto policy = policy::SecurityPolicy::Compile(catalog, partitions);
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy->AllPartitionsMask(), ~0ULL);

  LabelingPipeline pipeline(&catalog);
  policy::ReferenceMonitor monitor(&*policy);
  policy::PrincipalState state = monitor.InitialState();
  const auto scan_label =
      pipeline.Label(test::Q("Q(x, y) :- Meetings(x, y)", schema));
  ASSERT_TRUE(monitor.Submit(&state, scan_label));
  // Only the high bit (partition 63) survives — exercising state bits
  // beyond the old 32-bit word.
  EXPECT_EQ(state.consistent, 1ULL << 63);
}

TEST(BatchPipelineTest, InternerSaturationFallsBackStatelessly) {
  FbFixture fb;
  LabelingOptions options;
  options.max_interned_queries = 4;  // tiny cap to force saturation
  LabelingPipeline pipeline(&fb.catalog, nullptr, nullptr, {}, options);
  LabelerPipeline seed_pipeline(&fb.catalog);
  const auto pool = Workload(&fb.schema, 2, 64, 0x5a7a);
  // Well past the cap: labels must stay correct, interner must stay capped.
  for (const auto& query : pool) {
    EXPECT_EQ(pipeline.Label(query), seed_pipeline.LabelPacked(query));
  }
  const auto batch_labels = pipeline.LabelBatch(pool);
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(batch_labels[i], seed_pipeline.LabelPacked(pool[i]));
  }
  EXPECT_LE(pipeline.interner().num_queries(), 4);
  // Structures interned before saturation keep hitting their memo.
  const uint64_t hits_before = pipeline.stats().label_hits;
  (void)pipeline.Label(pool[0]);
  EXPECT_GT(pipeline.stats().label_hits, hits_before);
}

TEST(BatchPipelineTest, OverprivilegeAnalysisSharesPipelineCache) {
  FbFixture fb;
  // The compiled matcher never touches the ContainmentCache, so run the
  // pipeline on the seed kernel — this test is specifically about the
  // cache-sharing contract between labeling and the overprivilege audit.
  LabelingOptions options;
  options.ablate_compiled_matcher = true;
  LabelingPipeline pipeline(&fb.catalog, nullptr, nullptr, {}, options);
  auto workload = Workload(&fb.schema, 1, 64, 0xdddd);
  // Warm the shared cache through the pipeline.
  (void)pipeline.LabelBatch(workload);

  std::vector<int> requested;
  for (int v = 0; v < fb.catalog.size(); ++v) requested.push_back(v);
  const auto uncached =
      policy::AnalyzeOverprivilege(fb.catalog, requested, workload);
  const uint64_t hits_before = pipeline.cache().stats().hits;
  const auto cached = policy::AnalyzeOverprivilege(
      fb.catalog, requested, workload, &pipeline.interner(),
      &pipeline.cache());
  EXPECT_EQ(cached.unused_views, uncached.unused_views);
  EXPECT_EQ(cached.minimal_sufficient, uncached.minimal_sufficient);
  EXPECT_EQ(cached.unanswerable_atoms, uncached.unanswerable_atoms);
  // The audit reused pairwise decisions the labeling path had cached.
  EXPECT_GT(pipeline.cache().stats().hits, hits_before);
}

}  // namespace
}  // namespace fdc::label
