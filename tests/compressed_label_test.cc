#include "label/compressed_label.h"

#include <gtest/gtest.h>

namespace fdc::label {
namespace {

TEST(PackedAtomLabelTest, PackingLayout) {
  PackedAtomLabel label(/*relation=*/7, /*mask=*/0b1011);
  EXPECT_EQ(label.relation(), 7u);
  EXPECT_EQ(label.mask(), 0b1011u);
  // §6.1 layout: relation in the low 32 bits, mask in the high 32.
  EXPECT_EQ(label.raw(), (static_cast<uint64_t>(0b1011) << 32) | 7u);
}

TEST(PackedAtomLabelTest, LeqIsSupersetOfMask) {
  // ℓ(V) ⪯ ℓ(V') iff ℓ+(V) ⊇ ℓ+(V').
  PackedAtomLabel narrow(1, 0b0010);    // determined by one view
  PackedAtomLabel wide(1, 0b0111);      // determined by three views
  EXPECT_TRUE(wide.LeqAtom(narrow));    // more determiners = less info
  EXPECT_FALSE(narrow.LeqAtom(wide));
  EXPECT_TRUE(narrow.LeqAtom(narrow));
}

TEST(PackedAtomLabelTest, DifferentRelationsIncomparable) {
  PackedAtomLabel a(1, 0b1), b(2, 0b1);
  EXPECT_FALSE(a.LeqAtom(b));
  EXPECT_FALSE(b.LeqAtom(a));
}

TEST(PackedAtomLabelTest, Example61Supersets) {
  // Fgen = {V3, V6, V7, V8} as bits 0..3 over Contacts.
  // ℓ+(V9) = {V3, V6, V7} = 0b0111; ℓ+(V12) = {V3,V6,V7,V8} = 0b1111.
  PackedAtomLabel v9(0, 0b0111);
  PackedAtomLabel v12(0, 0b1111);
  EXPECT_TRUE(v12.LeqAtom(v9));   // ℓ(V12) ⪯ ℓ(V9)
  EXPECT_FALSE(v9.LeqAtom(v12));
}

TEST(DisclosureLabelTest, EmptyMaskMarksTop) {
  DisclosureLabel label;
  label.Add(PackedAtomLabel(3, 0));
  EXPECT_TRUE(label.top());
  EXPECT_EQ(label.size(), 0);
}

TEST(DisclosureLabelTest, TopComparesAboveEverything) {
  DisclosureLabel top;
  top.MarkTop();
  DisclosureLabel normal;
  normal.Add(PackedAtomLabel(1, 0b1));
  normal.Seal();
  EXPECT_TRUE(normal.Leq(top));
  EXPECT_FALSE(top.Leq(normal));
  EXPECT_TRUE(top.Leq(top));
}

TEST(DisclosureLabelTest, MultiAtomComparison) {
  DisclosureLabel q1;  // two atoms, both widely determined (low information)
  q1.Add(PackedAtomLabel(1, 0b111));
  q1.Add(PackedAtomLabel(2, 0b11));
  q1.Seal();
  DisclosureLabel q2;  // one atom over relation 1, narrowly determined
  q2.Add(PackedAtomLabel(1, 0b100));
  q2.Seal();
  // q1 ⪯ q2 fails: the relation-2 atom has no counterpart in q2.
  EXPECT_FALSE(q1.Leq(q2));
  // q2 ⪯ q1 fails too: q2's atom is determined by fewer views (more
  // information) than anything in q1 — ℓ+(q2 atom) = {2} does not contain
  // ℓ+(q1 atom) = {0,1,2}.
  EXPECT_FALSE(q2.Leq(q1));

  // Dropping the relation-2 atom makes the one-way comparison hold:
  // ℓ+ = 0b111 ⊇ 0b100.
  DisclosureLabel q3;
  q3.Add(PackedAtomLabel(1, 0b111));
  q3.Seal();
  EXPECT_TRUE(q3.Leq(q2));
  EXPECT_FALSE(q2.Leq(q3));
}

TEST(DisclosureLabelTest, SealSortsAndDedupes) {
  DisclosureLabel label;
  label.Add(PackedAtomLabel(2, 0b1));
  label.Add(PackedAtomLabel(1, 0b1));
  label.Add(PackedAtomLabel(2, 0b1));
  label.Seal();
  ASSERT_EQ(label.size(), 2);
  EXPECT_TRUE(label.atoms()[0] < label.atoms()[1]);
}

TEST(DisclosureLabelTest, UnionWithAccumulates) {
  DisclosureLabel a;
  a.Add(PackedAtomLabel(1, 0b1));
  a.Seal();
  DisclosureLabel b;
  b.Add(PackedAtomLabel(2, 0b1));
  b.Seal();
  a.UnionWith(b);
  EXPECT_EQ(a.size(), 2);
  // LUB property: both inputs are ⪯ the union.
  EXPECT_TRUE(b.Leq(a));
}

TEST(DisclosureLabelTest, UnionWithTopIsTop) {
  DisclosureLabel a;
  a.Add(PackedAtomLabel(1, 0b1));
  DisclosureLabel top;
  top.MarkTop();
  a.UnionWith(top);
  EXPECT_TRUE(a.top());
}

TEST(DisclosureLabelTest, LeqIsReflexiveAndTransitiveOnSamples) {
  std::vector<DisclosureLabel> labels;
  for (uint32_t m1 = 1; m1 < 8; ++m1) {
    for (uint32_t m2 = 1; m2 < 4; ++m2) {
      DisclosureLabel l;
      l.Add(PackedAtomLabel(1, m1));
      l.Add(PackedAtomLabel(2, m2));
      l.Seal();
      labels.push_back(std::move(l));
    }
  }
  for (const auto& a : labels) EXPECT_TRUE(a.Leq(a));
  for (const auto& a : labels) {
    for (const auto& b : labels) {
      for (const auto& c : labels) {
        if (a.Leq(b) && b.Leq(c)) EXPECT_TRUE(a.Leq(c));
      }
    }
  }
}

TEST(WideAtomLabelTest, BitsBeyond32) {
  WideAtomLabel wide;
  wide.relation = 5;
  wide.SetBit(3);
  wide.SetBit(77);
  EXPECT_FALSE(wide.MaskEmpty());
  ASSERT_EQ(wide.mask.size(), 2u);
  EXPECT_EQ(wide.mask[0], 1ULL << 3);
  EXPECT_EQ(wide.mask[1], 1ULL << 13);
}

TEST(WideAtomLabelTest, LeqHandlesLengthMismatch) {
  WideAtomLabel a, b;
  a.relation = b.relation = 1;
  a.SetBit(3);
  a.SetBit(77);
  b.SetBit(3);
  // ℓ+(a) ⊇ ℓ+(b): a ⪯ b.
  EXPECT_TRUE(a.LeqAtom(b));
  EXPECT_FALSE(b.LeqAtom(a));
}

TEST(WideLabelTest, MirrorsPackedSemantics) {
  WideLabel w1, w2;
  WideAtomLabel a;
  a.relation = 1;
  a.SetBit(0);
  a.SetBit(1);
  WideAtomLabel b;
  b.relation = 1;
  b.SetBit(1);
  w1.Add(a);
  w2.Add(b);
  EXPECT_TRUE(w1.Leq(w2));
  EXPECT_FALSE(w2.Leq(w1));

  WideLabel top;
  WideAtomLabel empty;
  empty.relation = 2;
  top.Add(empty);
  EXPECT_TRUE(top.top());
  EXPECT_TRUE(w1.Leq(top));
}

}  // namespace
}  // namespace fdc::label
