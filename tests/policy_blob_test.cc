// Binary policy artifacts (src/artifact/policy_blob.h): round-trip
// fidelity, engine decision equivalence through the blob load path, the
// strict loader against a randomized corruption corpus (run under
// ASan+UBSan in CI), and the checked-in golden artifact that pins the
// version-1 byte format.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "artifact/policy_blob.h"
#include "engine/disclosure_engine.h"
#include "policy/policy.h"
#include "test_util.h"
#include "workload/policy_generator.h"

namespace fdc {
namespace {

using test::FbFixture;
using test::RandomWorkload;

policy::SecurityPolicy GeneratePolicy(const label::ViewCatalog* catalog,
                                      uint64_t seed, int max_partitions = 5,
                                      int max_elements = 15) {
  workload::PolicyOptions options;
  options.max_partitions = max_partitions;
  options.max_elements_per_partition = max_elements;
  return workload::PolicyGenerator(catalog, options, seed).Next();
}

std::vector<uint8_t> MustCompile(const label::ViewCatalog& catalog,
                                 const policy::SecurityPolicy& policy,
                                 const artifact::PolicyBlobMeta& meta = {}) {
  Result<std::vector<uint8_t>> bytes =
      artifact::CompilePolicyBlob(catalog, policy, meta);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return *bytes;
}

// --- round trip ----------------------------------------------------------

TEST(PolicyBlobTest, RoundTripPreservesEveryField) {
  FbFixture fb;
  const policy::SecurityPolicy policy = GeneratePolicy(&fb.catalog, 42);
  artifact::PolicyBlobMeta meta;
  meta.name = "round-trip";
  meta.source_epoch = 17;
  const std::vector<uint8_t> bytes = MustCompile(fb.catalog, policy, meta);

  Result<artifact::LoadedPolicyBlob> blob = artifact::LoadPolicyBlob(bytes);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_EQ(blob->version(), artifact::kPolicyBlobVersion);
  EXPECT_EQ(blob->byte_size(), bytes.size());
  EXPECT_EQ(blob->meta().name, "round-trip");
  EXPECT_EQ(blob->meta().source_epoch, 17u);
  EXPECT_EQ(blob->num_partitions(),
            static_cast<uint32_t>(policy.num_partitions()));
  EXPECT_EQ(blob->num_relations(),
            static_cast<uint32_t>(policy.num_relations()));
  EXPECT_EQ(blob->num_views(), static_cast<uint32_t>(fb.catalog.size()));
  EXPECT_TRUE(artifact::ValidateAgainstCatalog(*blob, fb.catalog).ok());

  // Reconstructed policy: identical partition names, view sets, and every
  // mask word.
  Result<policy::SecurityPolicy> loaded = artifact::PolicyFromBlob(*blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_partitions(), policy.num_partitions());
  ASSERT_EQ(loaded->num_relations(), policy.num_relations());
  for (int p = 0; p < policy.num_partitions(); ++p) {
    EXPECT_EQ(loaded->partitions()[p].name, policy.partitions()[p].name);
    std::vector<int> want = policy.partitions()[p].view_ids;
    std::sort(want.begin(), want.end());
    want.erase(std::unique(want.begin(), want.end()), want.end());
    EXPECT_EQ(loaded->partitions()[p].view_ids, want);
    for (int rel = 0; rel < policy.num_relations(); ++rel) {
      const uint32_t r = static_cast<uint32_t>(rel);
      ASSERT_EQ(loaded->WordsFor(r), policy.WordsFor(r));
      for (int w = 0; w < policy.WordsFor(r); ++w) {
        EXPECT_EQ(loaded->PartitionWords(p, r)[w],
                  policy.PartitionWords(p, r)[w])
            << "partition " << p << " relation " << rel << " word " << w;
      }
    }
  }
}

TEST(PolicyBlobTest, CompilationIsDeterministic) {
  FbFixture fb;
  artifact::PolicyBlobMeta meta;
  meta.name = "determinism";
  const std::vector<uint8_t> a =
      MustCompile(fb.catalog, GeneratePolicy(&fb.catalog, 7), meta);
  const std::vector<uint8_t> b =
      MustCompile(fb.catalog, GeneratePolicy(&fb.catalog, 7), meta);
  EXPECT_EQ(a, b);
}

TEST(PolicyBlobTest, EngineSnapshotCaptureCarriesEpoch) {
  FbFixture fb;
  engine::DisclosureEngine engine(/*db=*/nullptr, &fb.catalog,
                                  GeneratePolicy(&fb.catalog, 3));
  engine.UpdatePolicy(GeneratePolicy(&fb.catalog, 4));  // epoch 2
  const std::shared_ptr<const engine::EngineSnapshot> snap =
      engine.Snapshot();
  Result<std::vector<uint8_t>> bytes =
      artifact::CompilePolicyBlob(*snap, "captured");
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  Result<artifact::LoadedPolicyBlob> blob = artifact::LoadPolicyBlob(*bytes);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_EQ(blob->meta().name, "captured");
  EXPECT_EQ(blob->meta().source_epoch, snap->epoch());
}

// --- engine decision equivalence through the blob path -------------------

TEST(PolicyBlobTest, BlobLoadedEngineIsDecisionIdentical) {
  FbFixture fb;
  const policy::SecurityPolicy policy = GeneratePolicy(&fb.catalog, 99);
  const std::vector<uint8_t> bytes = MustCompile(fb.catalog, policy);
  Result<artifact::LoadedPolicyBlob> blob = artifact::LoadPolicyBlob(bytes);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();

  // Engine A: the policy as constructed in-process. Engine B: the same
  // policy round-tripped through the artifact and UpdatePolicy(blob).
  engine::DisclosureEngine direct(/*db=*/nullptr, &fb.catalog, policy);
  engine::DisclosureEngine via_blob(/*db=*/nullptr, &fb.catalog,
                                    GeneratePolicy(&fb.catalog, 1));
  Result<uint64_t> epoch = via_blob.UpdatePolicy(*blob);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 2u);

  const auto pool = RandomWorkload(&fb.schema, 2, 400, 0xb10bULL);
  for (size_t i = 0; i < pool.size(); ++i) {
    const std::string principal = "app-" + std::to_string(i % 7);
    EXPECT_EQ(direct.Submit(principal, pool[i]),
              via_blob.Submit(principal, pool[i]))
        << "query " << i;
  }
}

TEST(PolicyBlobTest, UpdatePolicyRejectsForeignCatalogBlob) {
  FbFixture fb;
  // A blob whose frozen layout is a *subset* catalog (one relation's views
  // registered differently) must be rejected by the engine, not
  // misinterpreted bit-by-bit.
  cq::Schema other_schema = fb::BuildFacebookSchema();
  label::ViewCatalog other_catalog(&other_schema);
  ASSERT_TRUE(
      other_catalog.AddViewText("lonely_view", "V(a, b) :- Friend(a, b, r)")
          .ok());
  const std::vector<uint8_t> bytes =
      MustCompile(other_catalog, GeneratePolicy(&other_catalog, 5, 3, 1));
  Result<artifact::LoadedPolicyBlob> blob = artifact::LoadPolicyBlob(bytes);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();

  engine::DisclosureEngine engine(/*db=*/nullptr, &fb.catalog,
                                  GeneratePolicy(&fb.catalog, 3));
  Result<uint64_t> epoch = engine.UpdatePolicy(*blob);
  EXPECT_FALSE(epoch.ok());
  EXPECT_EQ(engine.Stats().epoch, 1u);  // nothing was published
}

// --- strict loader vs corruption -----------------------------------------

void ExpectCleanFailure(std::vector<uint8_t> bytes, const char* what) {
  Result<artifact::LoadedPolicyBlob> blob = artifact::LoadPolicyBlob(bytes);
  EXPECT_FALSE(blob.ok()) << what;
}

/// Recomputes the header's whole-blob checksum (FNV-1a 64 with the field
/// zeroed) so a corruption reaches the validation layer under test
/// instead of tripping the integrity layer.
void FixBlobChecksum(std::vector<uint8_t>* bytes) {
  for (int i = 0; i < 8; ++i) (*bytes)[32 + i] = 0;
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const uint8_t byte : *bytes) h = (h ^ byte) * 0x100000001b3ULL;
  for (int i = 0; i < 8; ++i) {
    (*bytes)[32 + i] = static_cast<uint8_t>(h >> (8 * i));
  }
}

/// One section's table entry offset plus its payload location, read back
/// out of a compiled blob's section table (7 entries of 32 bytes at 64).
struct SectionLoc {
  size_t entry = 0;     // offset of the section-table entry
  uint64_t offset = 0;  // payload offset within the blob
  uint64_t length = 0;  // payload length
};

SectionLoc FindSection(const std::vector<uint8_t>& bytes, uint8_t kind) {
  SectionLoc loc;
  for (size_t entry = 64; entry < 64 + 7 * 32; entry += 32) {
    if (bytes[entry] != kind) continue;
    loc.entry = entry;
    for (int i = 0; i < 8; ++i) {
      loc.offset |= uint64_t{bytes[entry + 8 + i]} << (8 * i);
      loc.length |= uint64_t{bytes[entry + 16 + i]} << (8 * i);
    }
    break;
  }
  return loc;
}

/// Recomputes one section's table-entry checksum (FNV-1a 64) after a
/// forgery, so only post-checksum validation layers can reject the blob.
void FixSectionChecksum(std::vector<uint8_t>* bytes, const SectionLoc& loc) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t i = 0; i < loc.length; ++i) {
    h = (h ^ (*bytes)[loc.offset + i]) * 0x100000001b3ULL;
  }
  for (int i = 0; i < 8; ++i) {
    (*bytes)[loc.entry + 24 + i] = static_cast<uint8_t>(h >> (8 * i));
  }
}

TEST(PolicyBlobFuzzTest, TruncationAtEveryPrefixFailsCleanly) {
  FbFixture fb;
  const std::vector<uint8_t> bytes =
      MustCompile(fb.catalog, GeneratePolicy(&fb.catalog, 8));
  // Every strict prefix must fail (total_length is in the header), and
  // must fail without crashing or reading out of bounds.
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<artifact::LoadedPolicyBlob> blob = artifact::LoadPolicyBlob(
        std::span<const uint8_t>(bytes.data(), len));
    EXPECT_FALSE(blob.ok()) << "prefix " << len;
  }
}

TEST(PolicyBlobFuzzTest, SingleBitFlipsNeverLoadAndNeverCrash) {
  FbFixture fb;
  const std::vector<uint8_t> bytes =
      MustCompile(fb.catalog, GeneratePolicy(&fb.catalog, 8));
  std::mt19937_64 rng(0xf1195eedULL);
  // Checksums make a loadable single-bit corruption essentially
  // impossible; what the fuzz asserts is "clean Result, no UB" on every
  // flip. Sample positions densely rather than exhaustively to keep the
  // sanitizer-job runtime bounded.
  for (int trial = 0; trial < 4000; ++trial) {
    std::vector<uint8_t> corrupt = bytes;
    const size_t bit = rng() % (corrupt.size() * 8);
    corrupt[bit / 8] ^= uint8_t(1u << (bit % 8));
    Result<artifact::LoadedPolicyBlob> blob =
        artifact::LoadPolicyBlob(corrupt);
    EXPECT_FALSE(blob.ok()) << "flipped bit " << bit;
  }
}

TEST(PolicyBlobFuzzTest, RandomGarbageNeverCrashes) {
  std::mt19937_64 rng(0x6a5ba6eULL);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> garbage(rng() % 4096);
    for (uint8_t& byte : garbage) byte = static_cast<uint8_t>(rng());
    // Half the trials get a valid magic so parsing reaches deeper layers.
    if (garbage.size() >= 8 && (trial % 2) == 0) {
      std::copy(artifact::kPolicyBlobMagic, artifact::kPolicyBlobMagic + 8,
                garbage.begin());
    }
    (void)artifact::LoadPolicyBlob(garbage);  // must not crash; ok() rare
  }
}

TEST(PolicyBlobFuzzTest, StructuredHeaderCorruptionsFailCleanly) {
  FbFixture fb;
  const std::vector<uint8_t> valid =
      MustCompile(fb.catalog, GeneratePolicy(&fb.catalog, 8));

  {  // wrong version
    std::vector<uint8_t> c = valid;
    c[8] = 0xfe;
    ExpectCleanFailure(std::move(c), "version");
  }
  {  // reserved flags set
    std::vector<uint8_t> c = valid;
    c[28] = 1;
    ExpectCleanFailure(std::move(c), "flags");
  }
  {  // reserved header bytes set
    std::vector<uint8_t> c = valid;
    c[63] = 1;
    ExpectCleanFailure(std::move(c), "reserved");
  }
  {  // total_length lies (shorter than the buffer)
    std::vector<uint8_t> c = valid;
    c[16] = static_cast<uint8_t>(c[16] - 1);
    ExpectCleanFailure(std::move(c), "total_length");
  }
  {  // section offset pushed out of bounds; checksum fixed so the table
     // bounds check is the layer that rejects it
    std::vector<uint8_t> c = valid;
    c[64 + 8] = 0xff;
    c[64 + 9] = 0xff;
    FixBlobChecksum(&c);
    ExpectCleanFailure(std::move(c), "section bounds");
  }
  {  // two sections aliased onto one byte range: entry 1 keeps its kind
     // but takes entry 0's offset/length/checksum (the stolen checksum is
     // valid for the stolen range, so only the overlap check can object)
    std::vector<uint8_t> c = valid;
    std::copy(c.begin() + 64 + 8, c.begin() + 64 + 32,
              c.begin() + 64 + 32 + 8);
    FixBlobChecksum(&c);
    ExpectCleanFailure(std::move(c), "overlap");
  }
}

TEST(PolicyBlobFuzzTest, ConsistentForgeryIsRejectedBySelfCheck) {
  FbFixture fb;
  const std::vector<uint8_t> valid =
      MustCompile(fb.catalog, GeneratePolicy(&fb.catalog, 8));

  // Forge a mask row bit, then recompute both the section checksum and the
  // whole-blob checksum so every integrity layer passes — only the
  // rows-vs-view-lists self-consistency check can catch it.
  Result<artifact::LoadedPolicyBlob> blob = artifact::LoadPolicyBlob(valid);
  ASSERT_TRUE(blob.ok());
  const SectionLoc words = FindSection(valid, /*kind=*/3);  // kPartitionWords
  ASSERT_NE(words.offset, 0u);
  std::vector<uint8_t> forged = valid;
  forged[words.offset] ^= 1;  // partition 0, word 0, bit 0
  FixSectionChecksum(&forged, words);
  FixBlobChecksum(&forged);

  Result<artifact::LoadedPolicyBlob> reloaded =
      artifact::LoadPolicyBlob(forged);
  EXPECT_FALSE(reloaded.ok());
  EXPECT_NE(reloaded.status().ToString().find("view list"),
            std::string::npos)
      << reloaded.status().ToString();
}

TEST(PolicyBlobFuzzTest, ForgedHugeCountsRejectedBeforeAllocating) {
  FbFixture fb;
  const std::vector<uint8_t> valid =
      MustCompile(fb.catalog, GeneratePolicy(&fb.catalog, 8));
  const SectionLoc meta = FindSection(valid, /*kind=*/1);  // kMeta
  ASSERT_NE(meta.offset, 0u);

  // num_views forged to ~2^32 with both checksums made valid: the loader
  // must refuse via the view-section size bound, never commit to a
  // multi-gigabyte views_.resize() (a forged count may not buy more
  // allocation than the blob carries bytes — the loader's OOM contract).
  {
    std::vector<uint8_t> forged = valid;
    // kMeta layout: num_partitions u32, num_relations u32, num_views u32.
    for (int i = 0; i < 4; ++i) forged[meta.offset + 8 + i] = 0xff;
    FixSectionChecksum(&forged, meta);
    FixBlobChecksum(&forged);
    Result<artifact::LoadedPolicyBlob> blob = artifact::LoadPolicyBlob(forged);
    EXPECT_FALSE(blob.ok());
    EXPECT_NE(blob.status().ToString().find("view count"), std::string::npos)
        << blob.status().ToString();
  }

  // num_relations forged huge: caught by the layout-section length check
  // before the per-relation duplicate-bit bookkeeping can amplify it.
  {
    std::vector<uint8_t> forged = valid;
    for (int i = 0; i < 4; ++i) forged[meta.offset + 4 + i] = 0xff;
    FixSectionChecksum(&forged, meta);
    FixBlobChecksum(&forged);
    ExpectCleanFailure(std::move(forged), "huge num_relations");
  }
}

// --- diff ----------------------------------------------------------------

TEST(PolicyBlobTest, DiffAgainstSelfIsEmpty) {
  FbFixture fb;
  const std::vector<uint8_t> bytes =
      MustCompile(fb.catalog, GeneratePolicy(&fb.catalog, 21));
  Result<artifact::LoadedPolicyBlob> blob = artifact::LoadPolicyBlob(bytes);
  ASSERT_TRUE(blob.ok());
  const artifact::BlobDiff diff = artifact::DiffPolicyBlobs(*blob, *blob);
  EXPECT_TRUE(diff.identical);
  EXPECT_TRUE(diff.layout_identical);
  EXPECT_TRUE(diff.notes.empty());
  EXPECT_TRUE(diff.partitions.empty());
}

TEST(PolicyBlobTest, DiffReportsMembershipDeltasByViewName) {
  FbFixture fb;
  policy::Partition base{"W0", {0, 1, 2}};
  policy::Partition grown{"W0", {0, 2, 5}};
  Result<policy::SecurityPolicy> pa =
      policy::SecurityPolicy::Compile(fb.catalog, {base});
  Result<policy::SecurityPolicy> pb =
      policy::SecurityPolicy::Compile(fb.catalog, {grown});
  ASSERT_TRUE(pa.ok() && pb.ok());
  Result<artifact::LoadedPolicyBlob> a =
      artifact::LoadPolicyBlob(MustCompile(fb.catalog, *pa));
  Result<artifact::LoadedPolicyBlob> b =
      artifact::LoadPolicyBlob(MustCompile(fb.catalog, *pb));
  ASSERT_TRUE(a.ok() && b.ok());

  const artifact::BlobDiff diff = artifact::DiffPolicyBlobs(*a, *b);
  EXPECT_FALSE(diff.identical);
  EXPECT_TRUE(diff.layout_identical);  // same catalog frozen on both sides
  ASSERT_EQ(diff.partitions.size(), 1u);
  EXPECT_EQ(diff.partitions[0].only_in_a,
            std::vector<std::string>{fb.catalog.view(1).name});
  EXPECT_EQ(diff.partitions[0].only_in_b,
            std::vector<std::string>{fb.catalog.view(5).name});
}

// --- golden artifact -----------------------------------------------------

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

// The golden blob pins the version-1 format byte for byte. If this test
// fails after an intentional format change: bump kPolicyBlobVersion,
// regenerate with
//   example_disclosure_tool compile --seed=77 --name=golden \
//       --out=tests/testdata/policy_v1.blob
// and keep THIS version-1 file loadable or consciously retire it — silent
// format drift is exactly what the pin exists to catch.
TEST(PolicyBlobGoldenTest, GoldenArtifactBytesAreStable) {
  FbFixture fb;
  artifact::PolicyBlobMeta meta;
  meta.name = "golden";
  const std::vector<uint8_t> fresh =
      MustCompile(fb.catalog, GeneratePolicy(&fb.catalog, 77), meta);
  const std::string path =
      std::string(FDC_TESTDATA_DIR) + "/policy_v1.blob";
  const std::vector<uint8_t> golden = ReadFileBytes(path);
  ASSERT_FALSE(golden.empty()) << "missing golden artifact: " << path;
  EXPECT_EQ(fresh, golden)
      << "the serialized format changed; see the comment above this test";
}

TEST(PolicyBlobGoldenTest, GoldenArtifactLoadsAndValidates) {
  FbFixture fb;
  Result<artifact::LoadedPolicyBlob> blob = artifact::LoadPolicyBlobFromFile(
      std::string(FDC_TESTDATA_DIR) + "/policy_v1.blob");
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_EQ(blob->version(), 1u);
  EXPECT_EQ(blob->meta().name, "golden");
  EXPECT_TRUE(artifact::ValidateAgainstCatalog(*blob, fb.catalog).ok());
  EXPECT_TRUE(artifact::PolicyFromBlob(*blob).ok());
}

// --- file IO -------------------------------------------------------------

TEST(PolicyBlobTest, FileRoundTrip) {
  FbFixture fb;
  const std::vector<uint8_t> bytes =
      MustCompile(fb.catalog, GeneratePolicy(&fb.catalog, 4));
  const std::string path =
      testing::TempDir() + "/policy_blob_test_roundtrip.blob";
  ASSERT_TRUE(artifact::WritePolicyBlobFile(path, bytes).ok());
  Result<artifact::LoadedPolicyBlob> blob =
      artifact::LoadPolicyBlobFromFile(path);
  EXPECT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_FALSE(artifact::LoadPolicyBlobFromFile(path + ".missing").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fdc
