// ByteQueue edge cases.
//
// The queue sits under both the frame decoder (recv side) and partial-
// write resumption (send side), so its contract is load-bearing for the
// whole serving layer: data() is always a contiguous view of exactly the
// unconsumed suffix, in FIFO order, across any interleaving of Append /
// tail() appends / Consume — including the compaction the flat-string
// layout performs once the dead prefix dominates. The suite ends with a
// randomized differential against the obviously-correct oracle
// (std::deque<uint8_t>).
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"
#include "server/byte_queue.h"

namespace fdc::server {
namespace {

std::string Contents(const ByteQueue& q) {
  return std::string(reinterpret_cast<const char*>(q.data()), q.size());
}

TEST(ByteQueueTest, StartsEmpty) {
  ByteQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(ByteQueueTest, AppendConsumeRoundTrip) {
  ByteQueue q;
  q.Append("hello", 5);
  q.Append(" world", 6);
  EXPECT_EQ(q.size(), 11u);
  EXPECT_EQ(Contents(q), "hello world");
  q.Consume(6);
  EXPECT_EQ(Contents(q), "world");
  q.Consume(5);
  EXPECT_TRUE(q.empty());
}

TEST(ByteQueueTest, ConsumeToEmptyResetsThenRefills) {
  ByteQueue q;
  q.Append("abc", 3);
  q.Consume(3);
  EXPECT_TRUE(q.empty());
  // The post-drain reset must not disturb a fresh fill.
  q.Append("defg", 4);
  EXPECT_EQ(Contents(q), "defg");
  q.Consume(1);
  EXPECT_EQ(Contents(q), "efg");
}

TEST(ByteQueueTest, TailAppendsAreVisibleAfterPartialConsume) {
  ByteQueue q;
  q.Append("first", 5);
  q.Consume(2);  // nonzero head: the tail path must respect the offset
  q.tail()->append("second");
  EXPECT_EQ(Contents(q), "rstsecond");
}

TEST(ByteQueueTest, ZeroByteOperationsAreNoOps) {
  ByteQueue q;
  q.Consume(0);
  EXPECT_TRUE(q.empty());
  q.Append("x", 1);
  q.Append("", 0);
  q.Consume(0);
  EXPECT_EQ(Contents(q), "x");
}

TEST(ByteQueueTest, ClearDropsEverythingIncludingTheHeadOffset) {
  ByteQueue q;
  q.Append("0123456789", 10);
  q.Consume(4);
  q.Clear();
  EXPECT_TRUE(q.empty());
  q.Append("ok", 2);
  EXPECT_EQ(Contents(q), "ok");
}

TEST(ByteQueueTest, CompactionPreservesContentAcrossLargeDeadPrefix) {
  // Push the head past the compaction threshold (4096) with live bytes
  // still queued; the view must be byte-identical before and after the
  // internal erase.
  ByteQueue q;
  std::string block(1024, '\0');
  for (int i = 0; i < 16; ++i) {
    for (auto& c : block) c = static_cast<char>('a' + i);
    q.Append(block.data(), block.size());
  }
  ASSERT_EQ(q.size(), 16u * 1024u);
  // Consume 9KB in odd-sized bites so head crosses kCompactAt mid-bite.
  size_t consumed = 0;
  while (consumed < 9 * 1024) {
    const size_t bite = std::min<size_t>(700, 9 * 1024 - consumed);
    const std::string before = Contents(q);
    q.Consume(bite);
    EXPECT_EQ(Contents(q), before.substr(bite));
    consumed += bite;
  }
  EXPECT_EQ(q.size(), 16u * 1024u - 9u * 1024u);
  // The survivor bytes are exactly blocks 9.. of the original pattern.
  const std::string view = Contents(q);
  EXPECT_EQ(view.front(), 'a' + 9);
  EXPECT_EQ(view.back(), 'a' + 15);
}

TEST(ByteQueueTest, RandomizedDifferentialAgainstDeque) {
  Rng rng(0xb17e5ULL);
  for (int round = 0; round < 8; ++round) {
    ByteQueue q;
    std::deque<uint8_t> oracle;
    for (int step = 0; step < 4000; ++step) {
      const uint64_t action = rng.Below(10);
      if (action < 5) {
        // Append a random chunk (sometimes large enough to force growth).
        const size_t n = rng.Below(action == 0 ? 3000 : 64) + 1;
        std::vector<uint8_t> chunk(n);
        for (auto& b : chunk) b = static_cast<uint8_t>(rng.Below(256));
        if (rng.Below(2) == 0) {
          q.Append(chunk.data(), chunk.size());
        } else {
          q.tail()->append(reinterpret_cast<const char*>(chunk.data()),
                           chunk.size());
        }
        oracle.insert(oracle.end(), chunk.begin(), chunk.end());
      } else if (action < 9) {
        if (oracle.empty()) continue;
        // Bias toward full drains so the reset path runs often.
        const size_t n = rng.Below(2) == 0 ? oracle.size()
                                           : rng.Below(oracle.size()) + 1;
        q.Consume(n);
        oracle.erase(oracle.begin(),
                     oracle.begin() + static_cast<ptrdiff_t>(n));
      } else {
        q.Clear();
        oracle.clear();
      }
      ASSERT_EQ(q.size(), oracle.size()) << "round " << round << " step "
                                         << step;
      ASSERT_EQ(q.empty(), oracle.empty());
      const uint8_t* view = q.data();
      for (size_t i = 0; i < oracle.size(); ++i) {
        ASSERT_EQ(view[i], oracle[i])
            << "round " << round << " step " << step << " byte " << i;
      }
    }
  }
}

}  // namespace
}  // namespace fdc::server
